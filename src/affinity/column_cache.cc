#include "affinity/column_cache.h"

#include <algorithm>

#include "common/check.h"
#include "common/memory_tracker.h"
#include "common/random.h"

namespace alid {

namespace {

// Symmetric pair key: a_ij == a_ji, so both orders map to one slot.
uint64_t PairKey(Index i, Index j) {
  const uint64_t lo = static_cast<uint32_t>(std::min(i, j));
  const uint64_t hi = static_cast<uint32_t>(std::max(i, j));
  return (hi << 32) | lo;
}

}  // namespace

ColumnCacheOptions ColumnCacheOptions::ForDataSize(Index n,
                                                   double budget_fraction) {
  ALID_CHECK(n >= 0);
  ALID_CHECK(budget_fraction > 0.0 && budget_fraction <= 1.0);
  const double dense_bytes = static_cast<double>(n) * static_cast<double>(n) *
                             static_cast<double>(sizeof(Scalar));
  ColumnCacheOptions options;
  options.max_bytes = static_cast<size_t>(
      std::clamp(dense_bytes * budget_fraction,
                 static_cast<double>(kMinAutoBudgetBytes),
                 static_cast<double>(kMaxAutoBudgetBytes)));
  return options;
}

struct ColumnCache::Shard {
  struct Entry {
    uint64_t key;
    Scalar value;
    // Generations of the pair's two items at insert time; a mismatch against
    // the live tags means one item was invalidated since.
    uint32_t gen_lo;
    uint32_t gen_hi;
  };
  std::mutex mu;
  // front = most recently used. The map indexes into the list.
  std::list<Entry> lru;
  std::unordered_map<uint64_t, std::list<Entry>::iterator> index;
};

ColumnCache::ColumnCache(ColumnCacheOptions options) : options_(options) {
  ALID_CHECK(options_.num_shards > 0);
  ALID_CHECK(options_.max_bytes >= kBytesPerEntry);
  ALID_CHECK(options_.generation_slots > 0 &&
             (options_.generation_slots & (options_.generation_slots - 1)) ==
                 0);
  max_bytes_.store(options_.max_bytes, std::memory_order_relaxed);
  max_bytes_per_shard_.store(
      std::max<size_t>(kBytesPerEntry,
                       options_.max_bytes /
                           static_cast<size_t>(options_.num_shards)),
      std::memory_order_relaxed);
  shards_.reserve(options_.num_shards);
  for (int s = 0; s < options_.num_shards; ++s) {
    shards_.push_back(std::make_unique<Shard>());
  }
  generations_ = std::make_unique<std::atomic<uint32_t>[]>(
      static_cast<size_t>(options_.generation_slots));
  for (int g = 0; g < options_.generation_slots; ++g) {
    generations_[g].store(0, std::memory_order_relaxed);
  }
}

ColumnCache::~ColumnCache() { Clear(); }

ColumnCache::Shard& ColumnCache::ShardFor(uint64_t key) {
  // SplitMix64 spreads consecutive pair keys across shards.
  return *shards_[SplitMix64(key) % shards_.size()];
}

uint32_t ColumnCache::GenerationOf(Index item) const {
  const uint32_t slot = static_cast<uint32_t>(item) &
                        static_cast<uint32_t>(options_.generation_slots - 1);
  return generations_[slot].load(std::memory_order_relaxed);
}

bool ColumnCache::Lookup(Index i, Index j, Scalar* value) {
  const uint64_t key = PairKey(i, j);
  Shard& shard = ShardFor(key);
  const uint32_t gen_lo = GenerationOf(std::min(i, j));
  const uint32_t gen_hi = GenerationOf(std::max(i, j));
  bool stale = false;
  {
    std::lock_guard<std::mutex> lock(shard.mu);
    auto it = shard.index.find(key);
    if (it != shard.index.end()) {
      if (it->second->gen_lo == gen_lo && it->second->gen_hi == gen_hi) {
        shard.lru.splice(shard.lru.begin(), shard.lru, it->second);
        *value = it->second->value;
        hits_.fetch_add(1, std::memory_order_relaxed);
        return true;
      }
      // Outdated by an EraseItems tag: drop lazily, right where it is found.
      shard.lru.erase(it->second);
      shard.index.erase(it);
      stale = true;
    }
  }
  if (stale) {
    stale_drops_.fetch_add(1, std::memory_order_relaxed);
    bytes_.fetch_sub(static_cast<int64_t>(kBytesPerEntry),
                     std::memory_order_relaxed);
    MemoryTracker::Global().Add(-static_cast<int64_t>(kBytesPerEntry));
  }
  misses_.fetch_add(1, std::memory_order_relaxed);
  return false;
}

void ColumnCache::Insert(Index i, Index j, Scalar value) {
  const uint64_t key = PairKey(i, j);
  Shard& shard = ShardFor(key);
  const uint32_t gen_lo = GenerationOf(std::min(i, j));
  const uint32_t gen_hi = GenerationOf(std::max(i, j));
  const size_t shard_budget =
      max_bytes_per_shard_.load(std::memory_order_relaxed);
  int64_t delta_bytes = 0;
  int64_t evicted = 0;
  {
    std::lock_guard<std::mutex> lock(shard.mu);
    auto it = shard.index.find(key);
    if (it != shard.index.end()) {
      it->second->value = value;
      it->second->gen_lo = gen_lo;
      it->second->gen_hi = gen_hi;
      shard.lru.splice(shard.lru.begin(), shard.lru, it->second);
    } else {
      shard.lru.push_front(Shard::Entry{key, value, gen_lo, gen_hi});
      shard.index[key] = shard.lru.begin();
      delta_bytes += static_cast<int64_t>(kBytesPerEntry);
      while (shard.index.size() * kBytesPerEntry > shard_budget) {
        shard.index.erase(shard.lru.back().key);
        shard.lru.pop_back();
        delta_bytes -= static_cast<int64_t>(kBytesPerEntry);
        ++evicted;
      }
    }
  }
  if (evicted > 0) evictions_.fetch_add(evicted, std::memory_order_relaxed);
  if (delta_bytes != 0) {
    bytes_.fetch_add(delta_bytes, std::memory_order_relaxed);
    MemoryTracker::Global().Add(delta_bytes);
  }
}

void ColumnCache::ResetCounters() {
  hits_.store(0, std::memory_order_relaxed);
  misses_.store(0, std::memory_order_relaxed);
  evictions_.store(0, std::memory_order_relaxed);
  stale_drops_.store(0, std::memory_order_relaxed);
}

int64_t ColumnCache::EraseItems(std::span<const Index> items) {
  // O(items), independent of the cache budget: bump each item's generation
  // slot; stale entries fall out lazily on their next Lookup (or via LRU
  // eviction). Entries of an unrelated item sharing a slot are
  // over-invalidated — an extra recompute, never a stale value.
  for (Index item : items) {
    const uint32_t slot =
        static_cast<uint32_t>(item) &
        static_cast<uint32_t>(options_.generation_slots - 1);
    generations_[slot].fetch_add(1, std::memory_order_relaxed);
  }
  return static_cast<int64_t>(items.size());
}

void ColumnCache::Rebudget(size_t new_max_bytes) {
  ALID_CHECK(new_max_bytes >= kBytesPerEntry);
  max_bytes_.store(new_max_bytes, std::memory_order_relaxed);
  const size_t per_shard = std::max<size_t>(
      kBytesPerEntry, new_max_bytes / static_cast<size_t>(shards_.size()));
  max_bytes_per_shard_.store(per_shard, std::memory_order_relaxed);
  // A shrink evicts down to the new bound right away; a growth keeps every
  // warm entry (the whole point of re-budgeting in place).
  int64_t evicted = 0;
  for (auto& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard->mu);
    while (shard->index.size() * kBytesPerEntry > per_shard) {
      shard->index.erase(shard->lru.back().key);
      shard->lru.pop_back();
      ++evicted;
    }
  }
  if (evicted > 0) {
    evictions_.fetch_add(evicted, std::memory_order_relaxed);
    const int64_t freed = evicted * static_cast<int64_t>(kBytesPerEntry);
    bytes_.fetch_sub(freed, std::memory_order_relaxed);
    MemoryTracker::Global().Add(-freed);
  }
}

void ColumnCache::Clear() {
  int64_t freed = 0;
  for (auto& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard->mu);
    freed += static_cast<int64_t>(shard->index.size() * kBytesPerEntry);
    shard->index.clear();
    shard->lru.clear();
  }
  if (freed != 0) {
    bytes_.fetch_sub(freed, std::memory_order_relaxed);
    MemoryTracker::Global().Add(-freed);
  }
}

}  // namespace alid
