#include "affinity/affinity_function.h"

#include <algorithm>
#include <cmath>
#include <vector>

#include "common/check.h"
#include "common/random.h"

namespace alid {

AffinityFunction::AffinityFunction(AffinityParams params) : params_(params) {
  ALID_CHECK_MSG(params_.k > 0.0, "scaling factor k must be positive");
  ALID_CHECK_MSG(params_.p >= 1.0, "Lp norm requires p >= 1");
}

Scalar AffinityFunction::operator()(const Dataset& data, Index i,
                                    Index j) const {
  if (i == j) return 0.0;
  return FromDistance(data.Distance(i, j, params_.p));
}

Scalar AffinityFunction::FromDistance(Scalar distance) const {
  return std::exp(-params_.k * distance);
}

Scalar AffinityFunction::ToDistance(Scalar affinity) const {
  ALID_CHECK(affinity > 0.0 && affinity <= 1.0);
  return -std::log(affinity) / params_.k;
}

double AffinityFunction::SuggestScalingFactor(const Dataset& data, double p,
                                              double target_affinity,
                                              int sample_size, uint64_t seed) {
  ALID_CHECK(data.size() >= 2);
  ALID_CHECK(target_affinity > 0.0 && target_affinity < 1.0);
  // The median index below is dists[sample_size / 2]; an empty or negative
  // sample would read out of bounds (and a "median of no distances" is
  // meaningless anyway), so reject it loudly instead.
  ALID_CHECK_MSG(sample_size >= 1,
                 "SuggestScalingFactor needs at least one sampled distance");
  Rng rng(seed);
  std::vector<Scalar> dists;
  dists.reserve(sample_size);
  for (int s = 0; s < sample_size; ++s) {
    Index i = static_cast<Index>(rng.UniformInt(0, data.size() - 1));
    Index j = static_cast<Index>(rng.UniformInt(0, data.size() - 2));
    if (j >= i) ++j;
    dists.push_back(data.Distance(i, j, p));
  }
  std::nth_element(dists.begin(), dists.begin() + dists.size() / 2,
                   dists.end());
  const Scalar median = std::max(dists[dists.size() / 2], Scalar{1e-12});
  // exp(-k * median) == target  =>  k = -ln(target) / median.
  return -std::log(target_affinity) / median;
}

}  // namespace alid
