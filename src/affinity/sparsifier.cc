#include "affinity/sparsifier.h"

#include <algorithm>
#include <tuple>
#include <unordered_set>
#include <vector>

#include "common/check.h"

namespace alid {

SparseMatrix Sparsifier::FromLshCollisions(const Dataset& data,
                                           const AffinityFunction& affinity,
                                           const LshIndex& lsh) {
  ALID_CHECK(lsh.size() == data.size());
  const Index n = data.size();
  std::vector<std::tuple<Index, Index, Scalar>> triplets;
  for (Index i = 0; i < n; ++i) {
    for (Index j : lsh.QueryByIndex(i)) {
      if (j <= i) continue;  // handle each unordered pair once
      const Scalar a = affinity(data, i, j);
      triplets.emplace_back(i, j, a);
      triplets.emplace_back(j, i, a);
    }
  }
  return SparseMatrix::FromTriplets(n, n, std::move(triplets));
}

SparseMatrix Sparsifier::FromExactNearestNeighbors(
    const Dataset& data, const AffinityFunction& affinity, int k) {
  const Index n = data.size();
  ALID_CHECK(k >= 1 && k < n);
  const double p = affinity.params().p;
  // For each item, find its k nearest neighbours (partial sort of distances).
  std::vector<std::vector<Index>> nn(n);
  std::vector<std::pair<Scalar, Index>> dists;
  for (Index i = 0; i < n; ++i) {
    dists.clear();
    dists.reserve(n - 1);
    for (Index j = 0; j < n; ++j) {
      if (j == i) continue;
      dists.emplace_back(data.Distance(i, j, p), j);
    }
    std::nth_element(dists.begin(), dists.begin() + (k - 1), dists.end());
    nn[i].reserve(k);
    for (int t = 0; t < k; ++t) nn[i].push_back(dists[t].second);
  }
  // Symmetrize by union.
  std::vector<std::tuple<Index, Index, Scalar>> triplets;
  std::vector<std::unordered_set<Index>> seen(n);
  for (Index i = 0; i < n; ++i) {
    for (Index j : nn[i]) {
      const Index a = std::min(i, j), b = std::max(i, j);
      if (!seen[a].insert(b).second) continue;
      const Scalar v = affinity(data, a, b);
      triplets.emplace_back(a, b, v);
      triplets.emplace_back(b, a, v);
    }
  }
  return SparseMatrix::FromTriplets(n, n, std::move(triplets));
}

SparseMatrix Sparsifier::Dense(const Dataset& data,
                               const AffinityFunction& affinity) {
  const Index n = data.size();
  std::vector<std::tuple<Index, Index, Scalar>> triplets;
  triplets.reserve(static_cast<size_t>(n) * (n - 1));
  for (Index i = 0; i < n; ++i) {
    for (Index j = i + 1; j < n; ++j) {
      const Scalar a = affinity(data, i, j);
      triplets.emplace_back(i, j, a);
      triplets.emplace_back(j, i, a);
    }
  }
  return SparseMatrix::FromTriplets(n, n, std::move(triplets));
}

}  // namespace alid
