#include "affinity/affinity_matrix.h"

namespace alid {

AffinityMatrix::AffinityMatrix(const Dataset& data,
                               const AffinityFunction& affinity)
    : matrix_(data.size(), data.size(), 0.0) {
  const Index n = data.size();
  for (Index i = 0; i < n; ++i) {
    for (Index j = i + 1; j < n; ++j) {
      const Scalar a = affinity(data, i, j);
      matrix_(i, j) = a;
      matrix_(j, i) = a;
      ++entries_computed_;
    }
  }
  charge_ = std::make_unique<ScopedMemoryCharge>(
      static_cast<int64_t>(matrix_.MemoryBytes()));
}

AffinityMatrix::~AffinityMatrix() = default;

}  // namespace alid
