#include "affinity/affinity_matrix.h"

#include "common/parallel.h"

namespace alid {

AffinityMatrix::AffinityMatrix(const Dataset& data,
                               const AffinityFunction& affinity,
                               ThreadPool* pool, int64_t grain)
    : matrix_(data.size(), data.size(), 0.0) {
  const Index n = data.size();
  ParallelChunks(pool, 0, n, grain, [&](int64_t, int64_t lo, int64_t hi) {
    for (int64_t ii = lo; ii < hi; ++ii) {
      const Index i = static_cast<Index>(ii);
      for (Index j = i + 1; j < n; ++j) {
        const Scalar a = affinity(data, i, j);
        matrix_(i, j) = a;
        matrix_(j, i) = a;
      }
    }
  });
  // Each unordered pair is evaluated exactly once, whichever worker fills it.
  entries_computed_ = static_cast<int64_t>(n) * (n - 1) / 2;
  charge_ = std::make_unique<ScopedMemoryCharge>(
      static_cast<int64_t>(matrix_.MemoryBytes()));
}

AffinityMatrix::~AffinityMatrix() = default;

}  // namespace alid
