#ifndef ALID_AFFINITY_COLUMN_CACHE_H_
#define ALID_AFFINITY_COLUMN_CACHE_H_

#include <atomic>
#include <cstdint>
#include <list>
#include <memory>
#include <mutex>
#include <span>
#include <unordered_map>
#include <utility>
#include <vector>

#include "common/types.h"
#include "obs/metrics.h"

namespace alid {

/// Sizing of the shared affinity-entry cache.
struct ColumnCacheOptions {
  /// Total budget across all shards (accounted with the MemoryTracker, since
  /// cached kernel entries are algorithmic storage like any local matrix).
  size_t max_bytes = size_t{64} << 20;
  /// Independent LRU shards; concurrent PALID map tasks hash to different
  /// shards, so lock contention stays negligible next to a kernel eval.
  int num_shards = 16;
  /// Size of the per-item generation-tag table (power of two). Items hash
  /// into these slots; invalidating an item bumps its slot's generation, and
  /// entries whose recorded generations no longer match are dropped lazily
  /// on Lookup. Two items sharing a slot over-invalidate each other — a
  /// recompute, never a stale value — so small tables stay correct.
  int generation_slots = 1 << 16;

  /// The data-aware budget the oracle installs by default: the cache may hold
  /// up to `budget_fraction` of the dense matrix footprint
  /// (n^2 * sizeof(Scalar)), clamped to
  /// [kMinAutoBudgetBytes, kMaxAutoBudgetBytes]. A fraction of the dense
  /// footprint keeps the policy honest on both ends: small datasets cache
  /// everything they could ever touch, large ones stay orders of magnitude
  /// below the O(n^2) baselines' materialized matrices.
  ///
  /// `budget_fraction` is the documented tuning knob of the auto budget: the
  /// default kDefaultAutoBudgetFraction (1/16) is a first guess, and the
  /// bench trajectory's cache_hit_rate / cache_evictions keys (bench_table2,
  /// bench_stream) are the telemetry to re-tune it against — raise the
  /// fraction when eviction counts climb with a poor hit rate, lower it when
  /// the hit rate saturates well below the budget. Streaming callers pass a
  /// fraction through OnlineAlidOptions::cache_budget_fraction.
  static ColumnCacheOptions ForDataSize(
      Index n, double budget_fraction = kDefaultAutoBudgetFraction);

  static constexpr double kDefaultAutoBudgetFraction = 1.0 / 16.0;
  static constexpr size_t kMinAutoBudgetBytes = size_t{1} << 20;    // 1 MiB
  static constexpr size_t kMaxAutoBudgetBytes = size_t{256} << 20;  // 256 MiB
};

/// A thread-safe, sharded, bounded LRU cache of affinity-kernel entries,
/// keyed by the symmetric pair (min(i,j), max(i,j)). It sits underneath
/// LazyAffinityOracle::Column()/Entry(): concurrent ALID runs whose ROIs
/// overlap reuse the kernel columns of shared support vertices instead of
/// recomputing them.
///
/// Honesty contract with Table 1: a Lookup hit is counted here (hits()), and
/// the oracle's entries_computed counter only advances on misses — so the
/// paper's "affinity entries computed" metric keeps meaning true kernel work.
class ColumnCache {
 public:
  explicit ColumnCache(ColumnCacheOptions options = {});
  ~ColumnCache();

  ColumnCache(const ColumnCache&) = delete;
  ColumnCache& operator=(const ColumnCache&) = delete;

  /// True (and *value filled) iff the symmetric pair (i, j) is cached under
  /// both items' current generations; a hit refreshes the entry's LRU
  /// position. An entry whose recorded generations went stale (EraseItems
  /// tagged one of its items since it was inserted) is dropped here and the
  /// call counts as a miss.
  bool Lookup(Index i, Index j, Scalar* value);

  /// Inserts (or refreshes) the pair's value under the items' current
  /// generations, evicting least-recently-used entries of the same shard
  /// while over budget.
  void Insert(Index i, Index j, Scalar value);

  /// Drops every entry (counters are kept).
  void Clear();

  /// Targeted invalidation for the streaming runtime's sliding-window
  /// expiry: tags every item in `items` so any cached entry involving it is
  /// dropped lazily on its next Lookup instead of being hunted down with a
  /// full-shard scan — O(items) regardless of the cache budget. An expired
  /// item's slot may be re-used by a later arrival, and a kernel value
  /// computed against the old occupant must never be served for the new
  /// one. Returns the number of items tagged. Must not run concurrently
  /// with computations whose results are inserted afterwards (the streaming
  /// runtime calls it from its serial expiry phase, which guarantees this).
  int64_t EraseItems(std::span<const Index> items);

  /// Re-sizes the budget in place — warm entries survive a growth, and a
  /// shrink evicts LRU-first down to the new bound. The streaming runtime
  /// grows the budget as its window fills past the construction-time floor.
  /// Thread-safe.
  void Rebudget(size_t max_bytes);

  /// Zeroes hits/misses/evictions/stale drops (entries stay warm). Pairs
  /// with the oracle's ResetCounters so `requested = entries_computed +
  /// cache_hits` always describes one measurement window.
  void ResetCounters();

  int64_t hits() const { return hits_.load(std::memory_order_relaxed); }
  int64_t misses() const { return misses_.load(std::memory_order_relaxed); }
  int64_t evictions() const {
    return evictions_.load(std::memory_order_relaxed);
  }
  /// Entries dropped by Lookup because an EraseItems tag outdated them.
  int64_t stale_drops() const {
    return stale_drops_.load(std::memory_order_relaxed);
  }
  /// Current accounted footprint across shards. Entries outdated by
  /// EraseItems still count until a Lookup touches (and drops) them or the
  /// LRU evicts them — they genuinely occupy memory until then.
  size_t size_bytes() const {
    return static_cast<size_t>(bytes_.load(std::memory_order_relaxed));
  }
  const ColumnCacheOptions& options() const { return options_; }
  size_t max_bytes() const {
    return max_bytes_.load(std::memory_order_relaxed);
  }

  /// Accounted cost of one cached entry (key, value, generation tags, node +
  /// index overhead).
  static constexpr size_t kBytesPerEntry = 88;

  /// Registers `<prefix>_hits` / `_misses` / `_evictions` / `_stale_drops` /
  /// `_bytes` / `_budget_bytes` callback gauges on `registry`, reading the
  /// atomics above on export. The cache must outlive the registry's
  /// snapshots (per-instance registries die with their owner, which owns or
  /// outlives its cache).
  void RegisterMetrics(obs::MetricsRegistry* registry,
                       const std::string& prefix) const {
    registry->AddCallbackGauge(prefix + "_hits", [this] { return hits(); });
    registry->AddCallbackGauge(prefix + "_misses",
                               [this] { return misses(); });
    registry->AddCallbackGauge(prefix + "_evictions",
                               [this] { return evictions(); });
    registry->AddCallbackGauge(prefix + "_stale_drops",
                               [this] { return stale_drops(); });
    registry->AddCallbackGauge(prefix + "_bytes", [this] {
      return static_cast<int64_t>(size_bytes());
    });
    registry->AddCallbackGauge(prefix + "_budget_bytes", [this] {
      return static_cast<int64_t>(max_bytes());
    });
  }

 private:
  struct Shard;

  Shard& ShardFor(uint64_t key);
  uint32_t GenerationOf(Index item) const;

  ColumnCacheOptions options_;
  std::atomic<size_t> max_bytes_;
  std::atomic<size_t> max_bytes_per_shard_;
  std::vector<std::unique_ptr<Shard>> shards_;
  // Per-slot generation tags (items hash in); bumped by EraseItems, checked
  // on Lookup. Fixed size, so reads need no growth synchronization.
  std::unique_ptr<std::atomic<uint32_t>[]> generations_;
  std::atomic<int64_t> hits_{0};
  std::atomic<int64_t> misses_{0};
  std::atomic<int64_t> evictions_{0};
  std::atomic<int64_t> stale_drops_{0};
  std::atomic<int64_t> bytes_{0};
};

}  // namespace alid

#endif  // ALID_AFFINITY_COLUMN_CACHE_H_
