#include "affinity/lazy_affinity_oracle.h"

#include "common/check.h"
#include "common/memory_tracker.h"

namespace alid {

LazyAffinityOracle::LazyAffinityOracle(const Dataset& data,
                                       const AffinityFunction& affinity)
    : data_(&data), affinity_(&affinity) {}

Scalar LazyAffinityOracle::Entry(Index i, Index j) const {
  entries_computed_.fetch_add(1, std::memory_order_relaxed);
  return (*affinity_)(*data_, i, j);
}

std::vector<Scalar> LazyAffinityOracle::Column(std::span<const Index> rows,
                                               Index col) const {
  std::vector<Scalar> out(rows.size());
  for (size_t r = 0; r < rows.size(); ++r) {
    out[r] = (*affinity_)(*data_, rows[r], col);
  }
  entries_computed_.fetch_add(static_cast<int64_t>(rows.size()),
                              std::memory_order_relaxed);
  return out;
}

void LazyAffinityOracle::Charge(int64_t bytes) const {
  MemoryTracker::Global().Add(bytes);
  const int64_t now = current_bytes_.fetch_add(bytes) + bytes;
  int64_t peak = peak_bytes_.load();
  while (now > peak && !peak_bytes_.compare_exchange_weak(peak, now)) {
  }
}

void LazyAffinityOracle::Discharge(int64_t bytes) const {
  MemoryTracker::Global().Add(-bytes);
  current_bytes_.fetch_sub(bytes);
}

void LazyAffinityOracle::ResetCounters() {
  entries_computed_.store(0);
  distances_computed_.store(0);
  current_bytes_.store(0);
  peak_bytes_.store(0);
}

}  // namespace alid
