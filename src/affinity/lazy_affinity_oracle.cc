#include "affinity/lazy_affinity_oracle.h"

#include "common/check.h"
#include "common/memory_tracker.h"
#include "simd/simd_dispatch.h"
#include "simd/soa_block.h"

namespace alid {

LazyAffinityOracle::LazyAffinityOracle(const Dataset& data,
                                       const AffinityFunction& affinity)
    : data_(&data), affinity_(&affinity) {
  // Default-on shared cache, budgeted to the dataset. Cached values are
  // bit-identical to recomputation, so this can never change a detection —
  // only the entries_computed / cache_hits split and the bounded footprint.
  cache_ = std::make_unique<ColumnCache>(
      ColumnCacheOptions::ForDataSize(data.size()));
}

Scalar LazyAffinityOracle::Entry(Index i, Index j) const {
  if (cache_ != nullptr) {
    Scalar value;
    if (cache_->Lookup(i, j, &value)) return value;
    value = (*affinity_)(*data_, i, j);
    entries_computed_.fetch_add(1, std::memory_order_relaxed);
    cache_->Insert(i, j, value);
    return value;
  }
  entries_computed_.fetch_add(1, std::memory_order_relaxed);
  return (*affinity_)(*data_, i, j);
}

std::vector<Scalar> LazyAffinityOracle::Column(std::span<const Index> rows,
                                               Index col) const {
  std::vector<Scalar> out(rows.size());
  if (cache_ != nullptr) {
    int64_t computed = 0;
    for (size_t r = 0; r < rows.size(); ++r) {
      if (cache_->Lookup(rows[r], col, &out[r])) continue;
      out[r] = (*affinity_)(*data_, rows[r], col);
      cache_->Insert(rows[r], col, out[r]);
      ++computed;
    }
    entries_computed_.fetch_add(computed, std::memory_order_relaxed);
    return out;
  }
  for (size_t r = 0; r < rows.size(); ++r) {
    out[r] = (*affinity_)(*data_, rows[r], col);
  }
  entries_computed_.fetch_add(static_cast<int64_t>(rows.size()),
                              std::memory_order_relaxed);
  return out;
}

void LazyAffinityOracle::DistancesTo(std::span<const Index> items,
                                     std::span<const Scalar> point,
                                     Scalar* out) const {
  distances_computed_.fetch_add(static_cast<int64_t>(items.size()),
                                std::memory_order_relaxed);
  const double p = affinity_->params().p;
  if (SimdSupportsNorm(p)) {
    GatheredDistances(*ActiveSimdOps(), *data_, items, point, p, out);
    return;
  }
  for (size_t i = 0; i < items.size(); ++i) {
    out[i] = data_->DistanceTo(items[i], point, p);
  }
}

void LazyAffinityOracle::EnableColumnCache(ColumnCacheOptions options) {
  cache_ = std::make_unique<ColumnCache>(options);
}

void LazyAffinityOracle::DisableColumnCache() { cache_.reset(); }

int64_t LazyAffinityOracle::InvalidateCachedItems(
    std::span<const Index> items) {
  return cache_ != nullptr ? cache_->EraseItems(items) : 0;
}

void LazyAffinityOracle::RebudgetColumnCache(size_t max_bytes) {
  if (cache_ != nullptr) cache_->Rebudget(max_bytes);
}

void LazyAffinityOracle::Charge(int64_t bytes) const {
  MemoryTracker::Global().Add(bytes);
  const int64_t now = current_bytes_.fetch_add(bytes) + bytes;
  int64_t peak = peak_bytes_.load();
  while (now > peak && !peak_bytes_.compare_exchange_weak(peak, now)) {
  }
}

void LazyAffinityOracle::Discharge(int64_t bytes) const {
  MemoryTracker::Global().Add(-bytes);
  current_bytes_.fetch_sub(bytes);
}

void LazyAffinityOracle::ResetCounters() {
  entries_computed_.store(0);
  distances_computed_.store(0);
  current_bytes_.store(0);
  peak_bytes_.store(0);
  // The cache's counters belong to the same measurement window — without
  // this, requested work (entries_computed + cache_hits) double-counts
  // pre-reset hits. Cached entries stay warm; only the tallies reset.
  if (cache_ != nullptr) cache_->ResetCounters();
}

}  // namespace alid
