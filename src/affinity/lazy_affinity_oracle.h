#ifndef ALID_AFFINITY_LAZY_AFFINITY_ORACLE_H_
#define ALID_AFFINITY_LAZY_AFFINITY_ORACLE_H_

#include <atomic>
#include <memory>
#include <span>
#include <vector>

#include "affinity/affinity_function.h"
#include "affinity/column_cache.h"
#include "common/dataset.h"
#include "common/types.h"

namespace alid {

/// Computes affinity entries on demand. This is the mechanism behind ALID's
/// complexity claim: LID only ever touches the columns A_{beta, i} of support
/// vertices (Figure 3), so the oracle evaluates exactly those kernel entries
/// and counts them. The counters feed Table 1's empirical verification.
///
/// Detections own their local columns and release them when the cluster is
/// peeled off, matching the paper's O(a*(a*+delta)) space argument. On top of
/// that the constructor installs a shared, sharded, bounded LRU layer
/// (ColumnCache) by default — auto-budgeted as a fraction of the dense-matrix
/// footprint via ColumnCacheOptions::ForDataSize — so detections (and
/// concurrent PALID runs) whose ROIs overlap reuse kernel entries instead of
/// recomputing them. Cached values are bit-identical to recomputation, so
/// results never depend on the cache; DisableColumnCache() restores the
/// paper-faithful stateless oracle. Cache hits never advance
/// entries_computed — that counter keeps meaning true kernel evaluations, so
/// Table 1 numbers stay honest; reuse is reported separately through
/// cache_hits(). Counters and the cache are thread-safe so PALID workers can
/// share one oracle.
class LazyAffinityOracle {
 public:
  LazyAffinityOracle(const Dataset& data, const AffinityFunction& affinity);

  const Dataset& data() const { return *data_; }
  const AffinityFunction& affinity() const { return *affinity_; }
  Index size() const { return data_->size(); }

  /// Single entry a_ij (0 on the diagonal).
  Scalar Entry(Index i, Index j) const;

  /// Column fragment A_{rows, col}: affinities between `col` and every index
  /// in `rows`, in order. This is the unit of work of a LID iteration.
  std::vector<Scalar> Column(std::span<const Index> rows, Index col) const;

  /// Distance between item i and an arbitrary point (used by the ROI test).
  Scalar DistanceTo(Index i, std::span<const Scalar> point) const {
    distances_computed_.fetch_add(1, std::memory_order_relaxed);
    return data_->DistanceTo(i, point, affinity_->params().p);
  }

  /// Distances between every item of `items` and `point`, written to
  /// out[0..items.size()). Bit-identical to per-item DistanceTo calls —
  /// counters included (distances_computed advances by items.size()) — but
  /// the supported norms (p == 2, p == 1) run gathered through the SIMD
  /// tile kernels, which is what the CIVS ROI scan batches over.
  void DistancesTo(std::span<const Index> items,
                   std::span<const Scalar> point, Scalar* out) const;

  /// Replaces (or resizes) the default shared column cache. Call before
  /// detections start sharing this oracle; not thread-safe against
  /// concurrent reads.
  void EnableColumnCache(ColumnCacheOptions options = {});

  /// Removes the cache, restoring the paper-faithful stateless oracle.
  void DisableColumnCache();

  /// Streaming expiry hook: invalidates every cached kernel entry involving
  /// `items` (whose dataset rows are about to be re-used by new arrivals),
  /// so the cache never serves an affinity computed against an evicted
  /// point. O(items) — the entries are generation-tagged and dropped lazily
  /// on their next Lookup. Returns the number of items tagged (0 when the
  /// cache is disabled).
  int64_t InvalidateCachedItems(std::span<const Index> items);

  /// Streaming growth hook: re-sizes the cache budget in place (warm entries
  /// survive a growth). No-op when the cache is disabled.
  void RebudgetColumnCache(size_t max_bytes);

  /// The installed cache, or nullptr when disabled.
  const ColumnCache* column_cache() const { return cache_.get(); }

  /// Kernel evaluations avoided by the column cache (0 when disabled).
  int64_t cache_hits() const { return cache_ ? cache_->hits() : 0; }

  /// Entries dropped by the cache's LRU policy while over budget.
  int64_t cache_evictions() const { return cache_ ? cache_->evictions() : 0; }

  /// Entries dropped lazily because an invalidation tag outdated them.
  int64_t cache_stale_drops() const {
    return cache_ ? cache_->stale_drops() : 0;
  }

  /// Current accounted cache footprint / live budget (0 when disabled).
  int64_t cache_size_bytes() const {
    return cache_ ? static_cast<int64_t>(cache_->size_bytes()) : 0;
  }
  int64_t cache_budget_bytes() const {
    return cache_ ? static_cast<int64_t>(cache_->max_bytes()) : 0;
  }

  /// ROI-membership distance evaluations — the CIVS scanning cost the
  /// logistic radius schedule (Eq. 16) is designed to keep small early.
  int64_t distances_computed() const { return distances_computed_.load(); }

  /// Total kernel evaluations since construction or the last ResetCounters().
  /// Cache hits are excluded: this is true work, in the Table 1 sense.
  int64_t entries_computed() const { return entries_computed_.load(); }

  /// Peak bytes of affinity storage simultaneously alive, as reported by
  /// detections via Charge/Discharge. Peak resets with ResetCounters().
  int64_t peak_bytes() const { return peak_bytes_.load(); }
  int64_t current_bytes() const { return current_bytes_.load(); }

  /// Detections report their live local-matrix footprint through these.
  void Charge(int64_t bytes) const;
  void Discharge(int64_t bytes) const;

  void ResetCounters();

 private:
  const Dataset* data_;
  const AffinityFunction* affinity_;
  std::unique_ptr<ColumnCache> cache_;
  mutable std::atomic<int64_t> entries_computed_{0};
  mutable std::atomic<int64_t> distances_computed_{0};
  mutable std::atomic<int64_t> current_bytes_{0};
  mutable std::atomic<int64_t> peak_bytes_{0};
};

}  // namespace alid

#endif  // ALID_AFFINITY_LAZY_AFFINITY_ORACLE_H_
