#ifndef ALID_AFFINITY_SPARSIFIER_H_
#define ALID_AFFINITY_SPARSIFIER_H_

#include "affinity/affinity_function.h"
#include "common/dataset.h"
#include "common/sparse_matrix.h"
#include "lsh/lsh_index.h"

namespace alid {

/// Builders of sparsified affinity matrices for the baselines (Section 5.1).
/// Chen et al. offer two sparsification routes; both are implemented:
///
///  - ANN via LSH: keep exactly the affinities between items that collide in
///    at least one LSH table (the setting the paper benchmarks, Fig. 6);
///  - ENN: keep the affinities of each item's exact k nearest neighbours
///    (expensive O(n^2) preprocessing, provided for completeness/tests).
///
/// Both produce a symmetric CSR matrix with an empty diagonal.
class Sparsifier {
 public:
  /// LSH-collision (ANN) sparsification; the induced SparseDegree() is the
  /// x-overlay of Fig. 6.
  static SparseMatrix FromLshCollisions(const Dataset& data,
                                        const AffinityFunction& affinity,
                                        const LshIndex& lsh);

  /// Exact k-nearest-neighbour (ENN) sparsification, symmetrized by union.
  static SparseMatrix FromExactNearestNeighbors(
      const Dataset& data, const AffinityFunction& affinity, int k);

  /// The fully dense matrix expressed as CSR (sparse degree ~ 0); lets every
  /// baseline run on one code path when the Fig. 11 protocol demands a full
  /// matrix.
  static SparseMatrix Dense(const Dataset& data,
                            const AffinityFunction& affinity);
};

}  // namespace alid

#endif  // ALID_AFFINITY_SPARSIFIER_H_
