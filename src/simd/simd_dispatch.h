#ifndef ALID_SIMD_SIMD_DISPATCH_H_
#define ALID_SIMD_SIMD_DISPATCH_H_

#include <vector>

#include "common/types.h"

namespace alid {

/// The instruction sets the Eq.-1 kernel path can run on. kScalar is always
/// compiled and is the bit-exactness oracle every wider path is tested
/// against; the others exist only where the toolchain could compile them and
/// engage only where the running CPU reports support.
enum class SimdIsa {
  kScalar = 0,
  kAvx2 = 1,
  kAvx512 = 2,
  kNeon = 3,
};

/// One ISA's implementation of the dimension-major tile kernels. A tile is
/// kSimdTileLanes member columns stored dimension-major (`tile[k *
/// kSimdTileLanes + l]` is coordinate k of lane l), so one contiguous load
/// feeds every lane the same coordinate of kSimdTileLanes different members.
///
/// Exactness contract (the reason the vector path can be the *default*):
/// every lane accumulates its member's per-dimension terms in ascending
/// dimension order with separate multiply and add — never fused, never
/// reassociated across dimensions — which is operation-for-operation the
/// scalar row-major loop of Dataset::SquaredL2 / LpDistance. Lanes never sum
/// with each other, so lane width is not observable: every ISA produces
/// bit-identical outputs, and `out[l]` is bit-identical to the scalar
/// distance of member l. The SIMD translation units compile with
/// -ffp-contract=off to pin this down.
struct SimdKernelOps {
  const char* name;
  /// out[l] = sum_k (tile[k * lanes + l] - query[k])^2 for l < count.
  void (*tile_squared_l2)(const Scalar* tile, int dim, const Scalar* query,
                          Scalar* out);
  /// out[l] = sum_k |tile[k * lanes + l] - query[k]| for l < count.
  void (*tile_l1)(const Scalar* tile, int dim, const Scalar* query,
                  Scalar* out);
};

/// Member columns per tile. Fixed at 8 so one tile is one AVX-512 register,
/// two AVX2 registers, four NEON registers, or eight scalar accumulators —
/// and so one tile is exactly one kSketchBoundStride checkpoint group of the
/// branch-and-bound prefix walk.
inline constexpr int kSimdTileLanes = 8;

/// The ops of `isa`, or nullptr when that ISA was not compiled in or the
/// running CPU does not support it (kScalar never returns nullptr).
const SimdKernelOps* SimdOpsFor(SimdIsa isa);

/// The dispatched ops: the widest supported ISA, unless the ALID_SIMD
/// environment variable ("scalar", "avx2", "avx512", "neon", "auto")
/// pinned one at first use. An unsatisfiable pin (ISA not compiled or not
/// supported by the CPU) falls back to scalar, never to a different vector
/// width, so a force-fallback CI leg can only ever get what it asked for.
const SimdKernelOps* ActiveSimdOps();

/// The ISA behind ActiveSimdOps().
SimdIsa ActiveSimdIsa();

/// Human-readable ISA name ("scalar", "avx2", ...).
const char* SimdIsaName(SimdIsa isa);

/// Every ISA whose ops are usable right now (compiled in and CPU-supported),
/// scalar first — the bench's per-ISA column axis.
std::vector<SimdIsa> AvailableSimdIsas();

/// Test hook: pins the dispatched ops to `isa` (must be available) until the
/// returned guard dies. Not thread-safe against concurrent queries — flip it
/// only between operations, as the bit-identity tests do.
class ScopedSimdIsaOverride {
 public:
  explicit ScopedSimdIsaOverride(SimdIsa isa);
  ~ScopedSimdIsaOverride();
  ScopedSimdIsaOverride(const ScopedSimdIsaOverride&) = delete;
  ScopedSimdIsaOverride& operator=(const ScopedSimdIsaOverride&) = delete;

 private:
  const SimdKernelOps* previous_;
  SimdIsa previous_isa_;
};

}  // namespace alid

#endif  // ALID_SIMD_SIMD_DISPATCH_H_
