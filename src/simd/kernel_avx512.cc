// AVX-512F tile kernels: one 8-lane tile is exactly one 8-wide double
// register. Same exactness discipline as the AVX2/scalar paths — separate
// subtract/multiply/add, ascending dimension order, no FMA, built with
// -ffp-contract=off — so every lane is bit-identical to the scalar
// reference. Compiles to a nullptr accessor without AVX-512 support.
#include "simd/simd_dispatch.h"

#if defined(__AVX512F__)

#include <immintrin.h>

namespace alid {
namespace {

void TileSquaredL2Avx512(const Scalar* tile, int dim, const Scalar* query,
                         Scalar* out) {
  __m512d acc = _mm512_setzero_pd();
  for (int k = 0; k < dim; ++k) {
    const __m512d q = _mm512_set1_pd(query[k]);
    const __m512d d = _mm512_sub_pd(
        _mm512_loadu_pd(tile + static_cast<size_t>(k) * kSimdTileLanes), q);
    acc = _mm512_add_pd(acc, _mm512_mul_pd(d, d));
  }
  _mm512_storeu_pd(out, acc);
}

void TileL1Avx512(const Scalar* tile, int dim, const Scalar* query,
                  Scalar* out) {
  __m512d acc = _mm512_setzero_pd();
  for (int k = 0; k < dim; ++k) {
    const __m512d q = _mm512_set1_pd(query[k]);
    const __m512d d = _mm512_sub_pd(
        _mm512_loadu_pd(tile + static_cast<size_t>(k) * kSimdTileLanes), q);
    acc = _mm512_add_pd(acc, _mm512_abs_pd(d));
  }
  _mm512_storeu_pd(out, acc);
}

constexpr SimdKernelOps kAvx512Ops = {"avx512", TileSquaredL2Avx512,
                                      TileL1Avx512};

}  // namespace

const SimdKernelOps* GetAvx512SimdOps() { return &kAvx512Ops; }

}  // namespace alid

#else  // !defined(__AVX512F__)

namespace alid {
const SimdKernelOps* GetAvx512SimdOps() { return nullptr; }
}  // namespace alid

#endif
