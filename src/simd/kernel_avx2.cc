// AVX2 tile kernels: one 8-lane tile is two 4-wide double registers. Only
// separate subtract/multiply/add intrinsics (never FMA — this TU builds
// without -mfma and with -ffp-contract=off), accumulating in ascending
// dimension order, so every lane reproduces the scalar reference bit for
// bit. The whole file compiles away to a nullptr accessor when the
// toolchain could not target AVX2.
#include "simd/simd_dispatch.h"

#if defined(__AVX2__)

#include <immintrin.h>

namespace alid {
namespace {

void TileSquaredL2Avx2(const Scalar* tile, int dim, const Scalar* query,
                       Scalar* out) {
  __m256d acc_lo = _mm256_setzero_pd();
  __m256d acc_hi = _mm256_setzero_pd();
  for (int k = 0; k < dim; ++k) {
    const __m256d q = _mm256_set1_pd(query[k]);
    const Scalar* col = tile + static_cast<size_t>(k) * kSimdTileLanes;
    const __m256d d_lo = _mm256_sub_pd(_mm256_loadu_pd(col), q);
    const __m256d d_hi = _mm256_sub_pd(_mm256_loadu_pd(col + 4), q);
    acc_lo = _mm256_add_pd(acc_lo, _mm256_mul_pd(d_lo, d_lo));
    acc_hi = _mm256_add_pd(acc_hi, _mm256_mul_pd(d_hi, d_hi));
  }
  _mm256_storeu_pd(out, acc_lo);
  _mm256_storeu_pd(out + 4, acc_hi);
}

void TileL1Avx2(const Scalar* tile, int dim, const Scalar* query,
                Scalar* out) {
  // |x| as a sign-bit mask clear — bit-identical to std::abs on doubles.
  const __m256d abs_mask = _mm256_castsi256_pd(_mm256_set1_epi64x(
      static_cast<long long>(0x7fffffffffffffffULL)));
  __m256d acc_lo = _mm256_setzero_pd();
  __m256d acc_hi = _mm256_setzero_pd();
  for (int k = 0; k < dim; ++k) {
    const __m256d q = _mm256_set1_pd(query[k]);
    const Scalar* col = tile + static_cast<size_t>(k) * kSimdTileLanes;
    const __m256d d_lo = _mm256_sub_pd(_mm256_loadu_pd(col), q);
    const __m256d d_hi = _mm256_sub_pd(_mm256_loadu_pd(col + 4), q);
    acc_lo = _mm256_add_pd(acc_lo, _mm256_and_pd(d_lo, abs_mask));
    acc_hi = _mm256_add_pd(acc_hi, _mm256_and_pd(d_hi, abs_mask));
  }
  _mm256_storeu_pd(out, acc_lo);
  _mm256_storeu_pd(out + 4, acc_hi);
}

constexpr SimdKernelOps kAvx2Ops = {"avx2", TileSquaredL2Avx2, TileL1Avx2};

}  // namespace

const SimdKernelOps* GetAvx2SimdOps() { return &kAvx2Ops; }

}  // namespace alid

#else  // !defined(__AVX2__)

namespace alid {
const SimdKernelOps* GetAvx2SimdOps() { return nullptr; }
}  // namespace alid

#endif
