// The always-compiled reference implementation of the tile kernels — the
// bit-exactness oracle of every vector path. Each lane accumulates its
// member's terms in ascending dimension order with separate multiply and add
// (this TU builds with -ffp-contract=off, see CMakeLists), which is exactly
// the operation sequence of the row-major scalar loops in common/dataset.cc
// — so a lane's output is bit-identical to Dataset::SquaredL2 / the L1 loop
// for that member, and bit-identical to what any vector ISA computes for the
// same lane.
#include <cmath>

#include "simd/simd_dispatch.h"

namespace alid {
namespace {

void TileSquaredL2Scalar(const Scalar* tile, int dim, const Scalar* query,
                         Scalar* out) {
  Scalar acc[kSimdTileLanes] = {};
  for (int k = 0; k < dim; ++k) {
    const Scalar q = query[k];
    const Scalar* col = tile + static_cast<size_t>(k) * kSimdTileLanes;
    for (int l = 0; l < kSimdTileLanes; ++l) {
      const Scalar d = col[l] - q;
      const Scalar sq = d * d;
      acc[l] += sq;
    }
  }
  for (int l = 0; l < kSimdTileLanes; ++l) out[l] = acc[l];
}

void TileL1Scalar(const Scalar* tile, int dim, const Scalar* query,
                  Scalar* out) {
  Scalar acc[kSimdTileLanes] = {};
  for (int k = 0; k < dim; ++k) {
    const Scalar q = query[k];
    const Scalar* col = tile + static_cast<size_t>(k) * kSimdTileLanes;
    for (int l = 0; l < kSimdTileLanes; ++l) {
      acc[l] += std::abs(col[l] - q);
    }
  }
  for (int l = 0; l < kSimdTileLanes; ++l) out[l] = acc[l];
}

constexpr SimdKernelOps kScalarOps = {"scalar", TileSquaredL2Scalar,
                                      TileL1Scalar};

}  // namespace

const SimdKernelOps* GetScalarSimdOps() { return &kScalarOps; }

}  // namespace alid
