#ifndef ALID_SIMD_SOA_BLOCK_H_
#define ALID_SIMD_SOA_BLOCK_H_

#include <span>
#include <vector>

#include "affinity/affinity_function.h"
#include "common/dataset.h"
#include "common/types.h"
#include "simd/simd_dispatch.h"

namespace alid {

/// True iff the SIMD tile kernels implement the L_p norm (the Eq.-1
/// experiments use p = 2; p = 1 rides along). Other norms take the
/// row-major scalar path unchanged.
inline bool SimdSupportsNorm(double p) { return p == 2.0 || p == 1.0; }

/// Dimension-major (structure-of-arrays) storage of a list of member rows,
/// tiled kSimdTileLanes members wide: tile t holds members
/// [t * lanes, (t + 1) * lanes), and within a tile coordinate k of all
/// lanes is contiguous (`tile[k * lanes + l]`). One contiguous load per
/// dimension feeds a full vector register, which is what turns the Eq.-1
/// distance loop from a latency-bound scalar chain into a width-bound
/// streaming kernel (the Polynesia layout-for-the-memory-hierarchy
/// argument). The final tile zero-pads its unused lanes so kernels can
/// always run full width; padded outputs are never read.
class SoaBlock {
 public:
  SoaBlock() = default;

  Index count() const { return count_; }
  int dim() const { return dim_; }
  bool empty() const { return count_ == 0; }
  Index num_tiles() const {
    return (count_ + kSimdTileLanes - 1) / kSimdTileLanes;
  }

  /// Rebuilds from rows of `data` gathered at `members`, in order — the
  /// stream's per-cluster layout (members live in arbitrary slots).
  void GatherRows(const Dataset& data, std::span<const Index> members);

  /// Rebuilds from a contiguous row-major block of `count` rows — the
  /// snapshot's cluster-major member storage.
  void FromRowMajor(const Scalar* rows, Index count, int dim);

  /// Rebuilds from rows of a contiguous row-major block gathered at `items`
  /// (block-local row ordinals), in order — how an arena block tiles its
  /// sketch prefix (descending-weight order) from its own member rows.
  void GatherRowMajor(const Scalar* rows, int dim,
                      std::span<const Index> items);

  /// Base pointer of tile t (dim * kSimdTileLanes scalars).
  const Scalar* tile(Index t) const {
    return tiles_.data() +
           static_cast<size_t>(t) * dim_ * kSimdTileLanes;
  }

  size_t MemoryBytes() const { return tiles_.size() * sizeof(Scalar); }

 private:
  void Resize(Index count, int dim);

  Index count_ = 0;
  int dim_ = 0;
  std::vector<Scalar> tiles_;
};

/// Fills out[0..lanes) with the L_p distances (p == 2 or p == 1) of tile
/// `t`'s members to `query` through `ops`. out[l] is bit-identical to
/// LpDistance(member row, query, p) for every valid lane: the tile kernel
/// reproduces the scalar per-dimension accumulation exactly, and the p == 2
/// square root is the same correctly-rounded std::sqrt on the same bits.
void TileDistances(const SimdKernelOps& ops, const SoaBlock& block, Index t,
                   const Scalar* query, double p,
                   Scalar out[kSimdTileLanes]);

/// pi(s, x): the weighted Eq.-1 kernel sum of every member of `block`
/// against `query`, accumulated serially in member order — the summation
/// order of OnlineAlid::ClusterAffinity and ClusterSnapshot::
/// ClusterAffinity, so the value is bit-identical to the row-major scalar
/// path. Distances come from the tile kernels; the transcendental stays the
/// same per-member std::exp on the same argument bits (the exact path never
/// batches it — see the tolerance contract in README for the opt-out).
/// REQUIRES SimdSupportsNorm(fn.params().p).
Scalar SoaWeightedKernelSum(const SimdKernelOps& ops, const SoaBlock& block,
                            std::span<const Scalar> weights,
                            const AffinityFunction& fn, const Scalar* query);

/// L_p distances (p == 2 or p == 1) of arbitrary dataset rows to `query`:
/// gathers items eight at a time into a thread-local tile and runs the tile
/// kernel. out[i] is bit-identical to data.DistanceTo(items[i], query, p).
/// REQUIRES SimdSupportsNorm(p).
void GatheredDistances(const SimdKernelOps& ops, const Dataset& data,
                       std::span<const Index> items,
                       std::span<const Scalar> query, double p, Scalar* out);

}  // namespace alid

#endif  // ALID_SIMD_SOA_BLOCK_H_
