#include "simd/simd_dispatch.h"

#include <cstdlib>
#include <cstring>

#include "common/check.h"

namespace alid {

// Each ISA translation unit always compiles; where its target flags are
// missing it defines its accessor to return nullptr, so this file never
// needs to know what the toolchain could do.
const SimdKernelOps* GetScalarSimdOps();
const SimdKernelOps* GetAvx2SimdOps();
const SimdKernelOps* GetAvx512SimdOps();
const SimdKernelOps* GetNeonSimdOps();

namespace {

bool CpuSupports(SimdIsa isa) {
  switch (isa) {
    case SimdIsa::kScalar:
      return true;
    case SimdIsa::kAvx2:
#if defined(__x86_64__) || defined(__i386__)
      return __builtin_cpu_supports("avx2") != 0;
#else
      return false;
#endif
    case SimdIsa::kAvx512:
#if defined(__x86_64__) || defined(__i386__)
      return __builtin_cpu_supports("avx512f") != 0;
#else
      return false;
#endif
    case SimdIsa::kNeon:
      // NEON is baseline on AArch64: compiled-in implies supported.
      return true;
  }
  return false;
}

const SimdKernelOps* CompiledOpsFor(SimdIsa isa) {
  switch (isa) {
    case SimdIsa::kScalar:
      return GetScalarSimdOps();
    case SimdIsa::kAvx2:
      return GetAvx2SimdOps();
    case SimdIsa::kAvx512:
      return GetAvx512SimdOps();
    case SimdIsa::kNeon:
      return GetNeonSimdOps();
  }
  return nullptr;
}

SimdIsa ParseIsaName(const char* name) {
  if (std::strcmp(name, "scalar") == 0) return SimdIsa::kScalar;
  if (std::strcmp(name, "avx2") == 0) return SimdIsa::kAvx2;
  if (std::strcmp(name, "avx512") == 0) return SimdIsa::kAvx512;
  if (std::strcmp(name, "neon") == 0) return SimdIsa::kNeon;
  return SimdIsa::kScalar;  // unknown names force the safe fallback
}

SimdIsa BestIsa() {
  // Widest first. AVX-512 on a supporting CPU beats AVX2 for this kernel
  // shape (one 8-lane tile per register); NEON only exists off x86.
  for (SimdIsa isa :
       {SimdIsa::kAvx512, SimdIsa::kAvx2, SimdIsa::kNeon}) {
    if (CompiledOpsFor(isa) != nullptr && CpuSupports(isa)) return isa;
  }
  return SimdIsa::kScalar;
}

struct Dispatch {
  const SimdKernelOps* ops;
  SimdIsa isa;
};

Dispatch ResolveDispatch() {
  SimdIsa isa = BestIsa();
  if (const char* pin = std::getenv("ALID_SIMD");
      pin != nullptr && *pin != '\0' && std::strcmp(pin, "auto") != 0) {
    const SimdIsa pinned = ParseIsaName(pin);
    // An unsatisfiable pin degrades to scalar — never to a *different*
    // vector ISA, so ALID_SIMD=scalar CI legs and width-pinned repro runs
    // get exactly what they named or the one always-valid fallback.
    isa = (CompiledOpsFor(pinned) != nullptr && CpuSupports(pinned))
              ? pinned
              : SimdIsa::kScalar;
  }
  return {CompiledOpsFor(isa), isa};
}

// Resolved once at first use (thread-safe magic static); the test override
// swaps the pointers and restores them.
Dispatch& ActiveDispatch() {
  static Dispatch dispatch = ResolveDispatch();
  return dispatch;
}

}  // namespace

const SimdKernelOps* SimdOpsFor(SimdIsa isa) {
  const SimdKernelOps* ops = CompiledOpsFor(isa);
  return (ops != nullptr && CpuSupports(isa)) ? ops : nullptr;
}

const SimdKernelOps* ActiveSimdOps() { return ActiveDispatch().ops; }

SimdIsa ActiveSimdIsa() { return ActiveDispatch().isa; }

const char* SimdIsaName(SimdIsa isa) {
  switch (isa) {
    case SimdIsa::kScalar:
      return "scalar";
    case SimdIsa::kAvx2:
      return "avx2";
    case SimdIsa::kAvx512:
      return "avx512";
    case SimdIsa::kNeon:
      return "neon";
  }
  return "unknown";
}

std::vector<SimdIsa> AvailableSimdIsas() {
  std::vector<SimdIsa> isas{SimdIsa::kScalar};
  for (SimdIsa isa : {SimdIsa::kAvx2, SimdIsa::kAvx512, SimdIsa::kNeon}) {
    if (SimdOpsFor(isa) != nullptr) isas.push_back(isa);
  }
  return isas;
}

ScopedSimdIsaOverride::ScopedSimdIsaOverride(SimdIsa isa) {
  Dispatch& dispatch = ActiveDispatch();
  previous_ = dispatch.ops;
  previous_isa_ = dispatch.isa;
  const SimdKernelOps* ops = SimdOpsFor(isa);
  ALID_CHECK_MSG(ops != nullptr,
                 "ScopedSimdIsaOverride: ISA not available on this host");
  dispatch.ops = ops;
  dispatch.isa = isa;
}

ScopedSimdIsaOverride::~ScopedSimdIsaOverride() {
  Dispatch& dispatch = ActiveDispatch();
  dispatch.ops = previous_;
  dispatch.isa = previous_isa_;
}

}  // namespace alid
