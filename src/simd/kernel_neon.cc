// NEON (AArch64) tile kernels: one 8-lane tile is four 2-wide double
// registers. Separate multiply and add (vmulq + vaddq, never vfmaq) in
// ascending dimension order, built with -ffp-contract=off, so every lane is
// bit-identical to the scalar reference — which on AArch64 is itself built
// contraction-free (the library-wide -ffp-contract=off, see CMakeLists).
#include "simd/simd_dispatch.h"

#if defined(__aarch64__)

#include <arm_neon.h>

namespace alid {
namespace {

void TileSquaredL2Neon(const Scalar* tile, int dim, const Scalar* query,
                       Scalar* out) {
  float64x2_t acc0 = vdupq_n_f64(0.0);
  float64x2_t acc1 = vdupq_n_f64(0.0);
  float64x2_t acc2 = vdupq_n_f64(0.0);
  float64x2_t acc3 = vdupq_n_f64(0.0);
  for (int k = 0; k < dim; ++k) {
    const float64x2_t q = vdupq_n_f64(query[k]);
    const Scalar* col = tile + static_cast<size_t>(k) * kSimdTileLanes;
    const float64x2_t d0 = vsubq_f64(vld1q_f64(col), q);
    const float64x2_t d1 = vsubq_f64(vld1q_f64(col + 2), q);
    const float64x2_t d2 = vsubq_f64(vld1q_f64(col + 4), q);
    const float64x2_t d3 = vsubq_f64(vld1q_f64(col + 6), q);
    acc0 = vaddq_f64(acc0, vmulq_f64(d0, d0));
    acc1 = vaddq_f64(acc1, vmulq_f64(d1, d1));
    acc2 = vaddq_f64(acc2, vmulq_f64(d2, d2));
    acc3 = vaddq_f64(acc3, vmulq_f64(d3, d3));
  }
  vst1q_f64(out, acc0);
  vst1q_f64(out + 2, acc1);
  vst1q_f64(out + 4, acc2);
  vst1q_f64(out + 6, acc3);
}

void TileL1Neon(const Scalar* tile, int dim, const Scalar* query,
                Scalar* out) {
  float64x2_t acc0 = vdupq_n_f64(0.0);
  float64x2_t acc1 = vdupq_n_f64(0.0);
  float64x2_t acc2 = vdupq_n_f64(0.0);
  float64x2_t acc3 = vdupq_n_f64(0.0);
  for (int k = 0; k < dim; ++k) {
    const float64x2_t q = vdupq_n_f64(query[k]);
    const Scalar* col = tile + static_cast<size_t>(k) * kSimdTileLanes;
    acc0 = vaddq_f64(acc0, vabsq_f64(vsubq_f64(vld1q_f64(col), q)));
    acc1 = vaddq_f64(acc1, vabsq_f64(vsubq_f64(vld1q_f64(col + 2), q)));
    acc2 = vaddq_f64(acc2, vabsq_f64(vsubq_f64(vld1q_f64(col + 4), q)));
    acc3 = vaddq_f64(acc3, vabsq_f64(vsubq_f64(vld1q_f64(col + 6), q)));
  }
  vst1q_f64(out, acc0);
  vst1q_f64(out + 2, acc1);
  vst1q_f64(out + 4, acc2);
  vst1q_f64(out + 6, acc3);
}

constexpr SimdKernelOps kNeonOps = {"neon", TileSquaredL2Neon, TileL1Neon};

}  // namespace

const SimdKernelOps* GetNeonSimdOps() { return &kNeonOps; }

}  // namespace alid

#else  // !defined(__aarch64__)

namespace alid {
const SimdKernelOps* GetNeonSimdOps() { return nullptr; }
}  // namespace alid

#endif
