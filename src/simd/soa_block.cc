#include "simd/soa_block.h"

#include <algorithm>
#include <cmath>

#include "common/check.h"

namespace alid {

void SoaBlock::Resize(Index count, int dim) {
  count_ = count;
  dim_ = dim;
  const size_t tiles = static_cast<size_t>(num_tiles());
  tiles_.assign(tiles * static_cast<size_t>(dim) * kSimdTileLanes, 0.0);
}

void SoaBlock::GatherRows(const Dataset& data,
                          std::span<const Index> members) {
  Resize(static_cast<Index>(members.size()), data.dim());
  for (size_t m = 0; m < members.size(); ++m) {
    const std::span<const Scalar> row = data[members[m]];
    Scalar* lane = tiles_.data() +
                   (m / kSimdTileLanes) * static_cast<size_t>(dim_) *
                       kSimdTileLanes +
                   m % kSimdTileLanes;
    for (int k = 0; k < dim_; ++k) lane[static_cast<size_t>(k) * kSimdTileLanes] = row[k];
  }
}

void SoaBlock::FromRowMajor(const Scalar* rows, Index count, int dim) {
  Resize(count, dim);
  for (Index m = 0; m < count; ++m) {
    const Scalar* row = rows + static_cast<size_t>(m) * dim;
    Scalar* lane = tiles_.data() +
                   (static_cast<size_t>(m) / kSimdTileLanes) *
                       static_cast<size_t>(dim_) * kSimdTileLanes +
                   static_cast<size_t>(m) % kSimdTileLanes;
    for (int k = 0; k < dim; ++k) lane[static_cast<size_t>(k) * kSimdTileLanes] = row[k];
  }
}

void SoaBlock::GatherRowMajor(const Scalar* rows, int dim,
                              std::span<const Index> items) {
  Resize(static_cast<Index>(items.size()), dim);
  for (size_t m = 0; m < items.size(); ++m) {
    const Scalar* row = rows + static_cast<size_t>(items[m]) * dim;
    Scalar* lane = tiles_.data() +
                   (m / kSimdTileLanes) * static_cast<size_t>(dim_) *
                       kSimdTileLanes +
                   m % kSimdTileLanes;
    for (int k = 0; k < dim; ++k) {
      lane[static_cast<size_t>(k) * kSimdTileLanes] = row[k];
    }
  }
}

void TileDistances(const SimdKernelOps& ops, const SoaBlock& block, Index t,
                   const Scalar* query, double p,
                   Scalar out[kSimdTileLanes]) {
  ALID_DCHECK(SimdSupportsNorm(p));
  if (p == 2.0) {
    ops.tile_squared_l2(block.tile(t), block.dim(), query, out);
    for (int l = 0; l < kSimdTileLanes; ++l) out[l] = std::sqrt(out[l]);
  } else {
    ops.tile_l1(block.tile(t), block.dim(), query, out);
  }
}

Scalar SoaWeightedKernelSum(const SimdKernelOps& ops, const SoaBlock& block,
                            std::span<const Scalar> weights,
                            const AffinityFunction& fn, const Scalar* query) {
  ALID_DCHECK(static_cast<Index>(weights.size()) == block.count());
  const double p = fn.params().p;
  Scalar dists[kSimdTileLanes];
  Scalar affinity = 0.0;  // accumulated in member order — see header
  const Index tiles = block.num_tiles();
  for (Index t = 0; t < tiles; ++t) {
    TileDistances(ops, block, t, query, p, dists);
    const Index base = t * kSimdTileLanes;
    const Index lanes =
        std::min<Index>(kSimdTileLanes, block.count() - base);
    for (Index l = 0; l < lanes; ++l) {
      affinity += weights[base + l] * fn.FromDistance(dists[l]);
    }
  }
  return affinity;
}

void GatheredDistances(const SimdKernelOps& ops, const Dataset& data,
                       std::span<const Index> items,
                       std::span<const Scalar> query, double p, Scalar* out) {
  ALID_DCHECK(SimdSupportsNorm(p));
  thread_local SoaBlock gather;
  Scalar dists[kSimdTileLanes];
  for (size_t at = 0; at < items.size(); at += kSimdTileLanes) {
    const size_t n = std::min<size_t>(kSimdTileLanes, items.size() - at);
    gather.GatherRows(data, items.subspan(at, n));
    TileDistances(ops, gather, 0, query.data(), p, dists);
    for (size_t l = 0; l < n; ++l) out[at + l] = dists[l];
  }
}

}  // namespace alid
