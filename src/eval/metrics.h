#ifndef ALID_EVAL_METRICS_H_
#define ALID_EVAL_METRICS_H_

#include <vector>

#include "affinity/affinity_function.h"
#include "common/dataset.h"
#include "common/types.h"
#include "core/cluster.h"

namespace alid {

/// Precision/recall/F1 of one detected member set against one ground-truth
/// set. Inputs must be ascending index lists.
struct F1Score {
  double precision = 0.0;
  double recall = 0.0;
  double f1 = 0.0;
};
F1Score ComputeF1(const IndexList& detected, const IndexList& truth);

/// The paper's detection-quality criterion (Section 5): the Average F1 score
/// over ground-truth dominant clusters, where each true cluster is scored
/// against its best-matching detected cluster.
double AverageF1(const std::vector<IndexList>& true_clusters,
                 const std::vector<IndexList>& detected_clusters);

/// AverageF1 over a DetectionResult's member lists.
double AverageF1(const std::vector<IndexList>& true_clusters,
                 const DetectionResult& result);

/// Converts a hard label vector (one label per item, negatives ignored) into
/// member lists — for scoring the partitioning baselines.
std::vector<IndexList> LabelsToClusters(const std::vector<int>& labels);

/// pi(x) of a member set under *uniform* weights, computed directly from the
/// kernel — lets methods without simplex weights report comparable densities.
Scalar UniformDensity(const Dataset& data, const AffinityFunction& affinity,
                      const IndexList& members);

}  // namespace alid

#endif  // ALID_EVAL_METRICS_H_
