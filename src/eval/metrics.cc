#include "eval/metrics.h"

#include <algorithm>
#include <unordered_map>

#include "common/check.h"

namespace alid {

F1Score ComputeF1(const IndexList& detected, const IndexList& truth) {
  F1Score score;
  if (detected.empty() || truth.empty()) return score;
  ALID_DCHECK(std::is_sorted(detected.begin(), detected.end()));
  ALID_DCHECK(std::is_sorted(truth.begin(), truth.end()));
  size_t i = 0, j = 0, hits = 0;
  while (i < detected.size() && j < truth.size()) {
    if (detected[i] == truth[j]) {
      ++hits;
      ++i;
      ++j;
    } else if (detected[i] < truth[j]) {
      ++i;
    } else {
      ++j;
    }
  }
  score.precision = static_cast<double>(hits) / detected.size();
  score.recall = static_cast<double>(hits) / truth.size();
  if (score.precision + score.recall > 0.0) {
    score.f1 =
        2.0 * score.precision * score.recall / (score.precision + score.recall);
  }
  return score;
}

double AverageF1(const std::vector<IndexList>& true_clusters,
                 const std::vector<IndexList>& detected_clusters) {
  if (true_clusters.empty()) return 0.0;
  double total = 0.0;
  for (const IndexList& truth : true_clusters) {
    double best = 0.0;
    for (const IndexList& det : detected_clusters) {
      best = std::max(best, ComputeF1(det, truth).f1);
    }
    total += best;
  }
  return total / static_cast<double>(true_clusters.size());
}

double AverageF1(const std::vector<IndexList>& true_clusters,
                 const DetectionResult& result) {
  std::vector<IndexList> detected;
  detected.reserve(result.clusters.size());
  for (const Cluster& c : result.clusters) detected.push_back(c.members);
  return AverageF1(true_clusters, detected);
}

std::vector<IndexList> LabelsToClusters(const std::vector<int>& labels) {
  std::unordered_map<int, IndexList> groups;
  for (size_t i = 0; i < labels.size(); ++i) {
    if (labels[i] >= 0) groups[labels[i]].push_back(static_cast<Index>(i));
  }
  std::vector<IndexList> out;
  out.reserve(groups.size());
  for (auto& [label, members] : groups) {
    std::sort(members.begin(), members.end());
    out.push_back(std::move(members));
  }
  return out;
}

Scalar UniformDensity(const Dataset& data, const AffinityFunction& affinity,
                      const IndexList& members) {
  const size_t m = members.size();
  if (m < 2) return 0.0;
  Scalar total = 0.0;
  for (size_t i = 0; i < m; ++i) {
    for (size_t j = i + 1; j < m; ++j) {
      total += affinity(data, members[i], members[j]);
    }
  }
  return 2.0 * total / (static_cast<Scalar>(m) * static_cast<Scalar>(m));
}

}  // namespace alid
