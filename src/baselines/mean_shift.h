#ifndef ALID_BASELINES_MEAN_SHIFT_H_
#define ALID_BASELINES_MEAN_SHIFT_H_

#include <cstdint>
#include <vector>

#include "common/dataset.h"
#include "common/types.h"

namespace alid {

class ThreadPool;

/// Options of the mean-shift baseline.
struct MeanShiftOptions {
  /// Gaussian kernel bandwidth h. Non-positive means adaptive: the median
  /// distance to the ~sqrt(n)-th nearest neighbour of a data sample.
  double bandwidth = -1.0;
  /// Iteration cap per point.
  int max_iterations = 50;
  /// Convergence threshold on the shift length (relative to bandwidth).
  double shift_tolerance = 1e-3;
  /// Modes closer than this fraction of the bandwidth merge into one cluster.
  double merge_fraction = 0.5;
  /// Optional speedup: ascend from at most this many points (0 = all),
  /// assigning the rest to the nearest discovered mode.
  int max_ascents = 0;
  uint64_t seed = 42;
  /// Optional shared worker pool: the per-point gradient ascents, the
  /// bandwidth estimate and the nearest-mode assignment run chunked on it.
  /// Every ascent is an independent trajectory written to its own slot and
  /// the modes merge sequentially in start order afterwards, so labels and
  /// modes are bit-identical for every pool width.
  ThreadPool* pool = nullptr;
  /// Chunk grain of the parallel loops (0 = ~64 fixed chunks).
  int64_t grain = 0;
};

/// Result of mean shift: a hard mode assignment.
struct MeanShiftResult {
  /// Mode id per point, in [0, num_modes).
  std::vector<int> labels;
  /// Discovered modes, one row each.
  Dataset modes;
};

/// Mean shift (Comaniciu & Meer, TPAMI 2002): gradient ascent of a Gaussian
/// kernel density estimate from every point; points whose ascents end at the
/// same mode form a cluster. Appendix C's comparison shows its quality hinges
/// on the bandwidth matching all true cluster scales at once.
MeanShiftResult RunMeanShift(const Dataset& data,
                             MeanShiftOptions options = {});

}  // namespace alid

#endif  // ALID_BASELINES_MEAN_SHIFT_H_
