#include "baselines/kmeans.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "common/check.h"
#include "common/random.h"

namespace alid {

namespace {

// k-means++ seeding: each next center is drawn with probability proportional
// to the squared distance to the nearest chosen center.
Dataset SeedPlusPlus(const Dataset& data, int k, Rng& rng) {
  const Index n = data.size();
  Dataset centers(data.dim());
  const Index first = static_cast<Index>(rng.UniformInt(0, n - 1));
  centers.Append(data[first]);
  std::vector<Scalar> d2(n, std::numeric_limits<Scalar>::max());
  while (centers.size() < k) {
    const Index c = centers.size() - 1;
    Scalar total = 0.0;
    for (Index i = 0; i < n; ++i) {
      const Scalar d = SquaredL2(data[i], centers[c]);
      if (d < d2[i]) d2[i] = d;
      total += d2[i];
    }
    Index next = 0;
    if (total > 0.0) {
      Scalar target = rng.Uniform(0.0, total);
      for (Index i = 0; i < n; ++i) {
        target -= d2[i];
        if (target <= 0.0) {
          next = i;
          break;
        }
      }
    } else {
      next = static_cast<Index>(rng.UniformInt(0, n - 1));
    }
    centers.Append(data[next]);
  }
  return centers;
}

KMeansResult RunOnce(const Dataset& data, int k, const KMeansOptions& options,
                     Rng& rng) {
  const Index n = data.size();
  const int d = data.dim();
  KMeansResult res;
  res.centers = SeedPlusPlus(data, k, rng);
  res.labels.assign(n, -1);

  std::vector<Scalar> sums(static_cast<size_t>(k) * d);
  std::vector<Index> counts(k);
  for (int iter = 0; iter < options.max_iterations; ++iter) {
    ++res.iterations;
    bool changed = false;
    res.sse = 0.0;
    std::fill(sums.begin(), sums.end(), 0.0);
    std::fill(counts.begin(), counts.end(), 0);
    for (Index i = 0; i < n; ++i) {
      int best = 0;
      Scalar best_d = std::numeric_limits<Scalar>::max();
      for (int c = 0; c < k; ++c) {
        const Scalar dist = SquaredL2(data[i], res.centers[c]);
        if (dist < best_d) {
          best_d = dist;
          best = c;
        }
      }
      if (res.labels[i] != best) {
        res.labels[i] = best;
        changed = true;
      }
      res.sse += best_d;
      auto row = data[i];
      Scalar* sum = sums.data() + static_cast<size_t>(best) * d;
      for (int t = 0; t < d; ++t) sum[t] += row[t];
      ++counts[best];
    }
    if (!changed) break;
    for (int c = 0; c < k; ++c) {
      if (counts[c] == 0) continue;  // empty cluster keeps its center
      auto center = res.centers.MutableRow(c);
      const Scalar* sum = sums.data() + static_cast<size_t>(c) * d;
      for (int t = 0; t < d; ++t) {
        center[t] = sum[t] / static_cast<Scalar>(counts[c]);
      }
    }
  }
  return res;
}

}  // namespace

KMeansResult RunKMeans(const Dataset& data, int k, KMeansOptions options) {
  ALID_CHECK(k >= 1 && k <= data.size());
  ALID_CHECK(options.restarts >= 1);
  Rng rng(options.seed);
  KMeansResult best;
  best.sse = std::numeric_limits<Scalar>::max();
  for (int r = 0; r < options.restarts; ++r) {
    KMeansResult run = RunOnce(data, k, options, rng);
    if (run.sse < best.sse) best = std::move(run);
  }
  return best;
}

}  // namespace alid
