#include "baselines/kmeans.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "common/check.h"
#include "common/parallel.h"
#include "common/random.h"

namespace alid {

namespace {

// k-means++ seeding: each next center is drawn with probability proportional
// to the squared distance to the nearest chosen center. The distance updates
// run chunked on the pool; the total reduces in chunk order, so the drawn
// centers are identical for every pool width.
Dataset SeedPlusPlus(const Dataset& data, int k, const KMeansOptions& options,
                     Rng& rng) {
  const Index n = data.size();
  Dataset centers(data.dim());
  const Index first = static_cast<Index>(rng.UniformInt(0, n - 1));
  centers.Append(data[first]);
  std::vector<Scalar> d2(n, std::numeric_limits<Scalar>::max());
  while (centers.size() < k) {
    const Index c = centers.size() - 1;
    const Scalar total = ParallelSum(
        options.pool, 0, n, options.grain, [&](int64_t lo, int64_t hi) {
          Scalar partial = 0.0;
          for (int64_t i = lo; i < hi; ++i) {
            const Scalar d = SquaredL2(data[static_cast<Index>(i)], centers[c]);
            if (d < d2[i]) d2[i] = d;
            partial += d2[i];
          }
          return partial;
        });
    Index next = 0;
    if (total > 0.0) {
      Scalar target = rng.Uniform(0.0, total);
      for (Index i = 0; i < n; ++i) {
        target -= d2[i];
        if (target <= 0.0) {
          next = i;
          break;
        }
      }
    } else {
      next = static_cast<Index>(rng.UniformInt(0, n - 1));
    }
    centers.Append(data[next]);
  }
  return centers;
}

// Per-chunk partial state of one Lloyd assignment sweep. Each chunk owns one
// slot, and the reduce below combines slots in chunk order — the fixed
// reduction order that makes the parallel run bit-identical to the serial
// one.
struct ChunkPartial {
  std::vector<Scalar> sums;   // k x d centroid accumulators
  std::vector<Index> counts;  // k member counts
  Scalar sse = 0.0;
  bool changed = false;
};

KMeansResult RunOnce(const Dataset& data, int k, const KMeansOptions& options,
                     Rng& rng) {
  const Index n = data.size();
  const int d = data.dim();
  KMeansResult res;
  res.centers = SeedPlusPlus(data, k, options, rng);
  res.labels.assign(n, -1);

  const int64_t num_chunks = DeterministicChunkCount(n, options.grain);
  std::vector<ChunkPartial> partials(num_chunks);
  std::vector<Scalar> sums(static_cast<size_t>(k) * d);
  std::vector<Index> counts(k);
  for (int iter = 0; iter < options.max_iterations; ++iter) {
    ++res.iterations;
    ParallelChunks(
        options.pool, 0, n, options.grain,
        [&](int64_t chunk, int64_t lo, int64_t hi) {
          ChunkPartial& p = partials[chunk];
          p.sums.assign(static_cast<size_t>(k) * d, 0.0);
          p.counts.assign(k, 0);
          p.sse = 0.0;
          p.changed = false;
          for (int64_t ii = lo; ii < hi; ++ii) {
            const Index i = static_cast<Index>(ii);
            int best = 0;
            Scalar best_d = std::numeric_limits<Scalar>::max();
            for (int c = 0; c < k; ++c) {
              const Scalar dist = SquaredL2(data[i], res.centers[c]);
              if (dist < best_d) {
                best_d = dist;
                best = c;
              }
            }
            if (res.labels[i] != best) {
              res.labels[i] = best;
              p.changed = true;
            }
            p.sse += best_d;
            auto row = data[i];
            Scalar* sum = p.sums.data() + static_cast<size_t>(best) * d;
            for (int t = 0; t < d; ++t) sum[t] += row[t];
            ++p.counts[best];
          }
        });
    bool changed = false;
    res.sse = 0.0;
    std::fill(sums.begin(), sums.end(), 0.0);
    std::fill(counts.begin(), counts.end(), 0);
    for (const ChunkPartial& p : partials) {
      changed |= p.changed;
      res.sse += p.sse;
      for (size_t t = 0; t < sums.size(); ++t) sums[t] += p.sums[t];
      for (int c = 0; c < k; ++c) counts[c] += p.counts[c];
    }
    res.sse_history.push_back(res.sse);
    if (!changed) break;
    for (int c = 0; c < k; ++c) {
      if (counts[c] == 0) continue;  // empty cluster keeps its center
      auto center = res.centers.MutableRow(c);
      const Scalar* sum = sums.data() + static_cast<size_t>(c) * d;
      for (int t = 0; t < d; ++t) {
        center[t] = sum[t] / static_cast<Scalar>(counts[c]);
      }
    }
  }
  return res;
}

}  // namespace

KMeansResult RunKMeans(const Dataset& data, int k, KMeansOptions options) {
  ALID_CHECK(k >= 1 && k <= data.size());
  ALID_CHECK(options.restarts >= 1);
  Rng rng(options.seed);
  KMeansResult best;
  best.sse = std::numeric_limits<Scalar>::max();
  for (int r = 0; r < options.restarts; ++r) {
    KMeansResult run = RunOnce(data, k, options, rng);
    if (run.sse < best.sse) best = std::move(run);
  }
  return best;
}

}  // namespace alid
