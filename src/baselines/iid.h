#ifndef ALID_BASELINES_IID_H_
#define ALID_BASELINES_IID_H_

#include <vector>

#include "baselines/affinity_view.h"
#include "core/cluster.h"

namespace alid {

/// Options of the Infection Immunization Dynamics baseline.
struct IidOptions {
  /// Iteration cap per dense-subgraph extraction.
  int max_iterations = 5000;
  /// Convergence tolerance on max |pi(s_i - x, x)|.
  double tolerance = 1e-10;
  /// Weights below this are snapped to zero.
  double weight_epsilon = 1e-14;
};

/// The Infection Immunization Dynamics of Rota Bulò, Pelillo & Bomze (CVIU
/// 2011) — the algorithm ALID localizes. Works on the *materialized* global
/// affinity matrix (dense or sparsified), which is exactly its O(n^2)
/// bottleneck: each extraction is O(n) per iteration, but A itself costs
/// quadratic time and space (Section 3).
class IidDetector {
 public:
  IidDetector(AffinityView affinity, IidOptions options = {});

  /// Extracts one dense subgraph over the `active` vertices (nullptr = all),
  /// starting from the barycenter of the active set.
  Cluster ExtractOne(const std::vector<bool>* active = nullptr) const;

  /// Detects all dominant clusters with the peeling strategy of Section 4.4.
  DetectionResult DetectAll() const;

 private:
  AffinityView affinity_;
  IidOptions options_;
};

}  // namespace alid

#endif  // ALID_BASELINES_IID_H_
