#include "baselines/spectral.h"

#include <algorithm>
#include <cmath>

#include "affinity/affinity_matrix.h"
#include "common/check.h"
#include "common/matrix.h"
#include "common/parallel.h"
#include "common/random.h"
#include "baselines/kmeans.h"
#include "linalg/jacobi.h"
#include "linalg/lanczos.h"

namespace alid {

namespace {

// Row-normalizes an embedding and k-means it into `k` groups.
std::vector<int> ClusterEmbedding(DenseMatrix embedding, int k,
                                  const SpectralOptions& options) {
  const Index n = embedding.rows();
  const Index dim = embedding.cols();
  Dataset rows(static_cast<int>(dim));
  for (Index i = 0; i < n; ++i) {
    auto row = embedding.MutableRow(i);
    Scalar norm = 0.0;
    for (Scalar v : row) norm += v * v;
    norm = std::sqrt(norm);
    if (norm > 0.0) {
      for (Scalar& v : row) v /= norm;
    }
    rows.Append(row);
  }
  KMeansOptions km;
  km.seed = options.seed;
  km.restarts = options.kmeans_restarts;
  km.pool = options.pool;
  km.grain = options.grain;
  return RunKMeans(rows, k, km).labels;
}

}  // namespace

SpectralResult SpectralClusterFull(const Dataset& data,
                                   const AffinityFunction& affinity,
                                   SpectralOptions options) {
  const Index n = data.size();
  const int k = options.num_clusters;
  ALID_CHECK(k >= 1 && k <= n);

  AffinityMatrix w(data, affinity, options.pool, options.grain);
  std::vector<Scalar> inv_sqrt_deg(n, 0.0);
  ParallelChunks(options.pool, 0, n, options.grain,
                 [&](int64_t, int64_t lo, int64_t hi) {
                   for (int64_t i = lo; i < hi; ++i) {
                     Scalar deg = 0.0;
                     for (Scalar v : w.matrix().Row(static_cast<Index>(i))) {
                       deg += v;
                     }
                     inv_sqrt_deg[i] = deg > 0.0 ? 1.0 / std::sqrt(deg) : 0.0;
                   }
                 });

  // Top-K eigenvectors of D^{-1/2} W D^{-1/2} without forming it. Each output
  // row is one sequential dot, so the matvec — the O(n^2) cost center —
  // parallelizes over rows without perturbing a single bit. The element-wise
  // z scaling stays serial: one multiply per element is cheaper than a pool
  // dispatch.
  auto matvec = [&](std::span<const Scalar> x) {
    std::vector<Scalar> z(n), t(n);
    for (Index i = 0; i < n; ++i) z[i] = x[i] * inv_sqrt_deg[i];
    ParallelChunks(options.pool, 0, n, options.grain,
                   [&](int64_t, int64_t lo, int64_t hi) {
                     for (int64_t i = lo; i < hi; ++i) {
                       auto row = w.matrix().Row(static_cast<Index>(i));
                       Scalar acc = 0.0;
                       for (Index j = 0; j < n; ++j) acc += row[j] * z[j];
                       t[i] = acc * inv_sqrt_deg[i];
                     }
                   });
    return t;
  };
  LanczosOptions lz;
  lz.seed = options.seed;
  lz.pool = options.pool;
  lz.grain = options.grain;
  EigenDecompositionTopK eig = LanczosTopK(n, k, matvec, lz);

  SpectralResult out;
  out.labels = ClusterEmbedding(std::move(eig.vectors), k, options);
  return out;
}

SpectralResult SpectralClusterNystrom(const Dataset& data,
                                      const AffinityFunction& affinity,
                                      SpectralOptions options) {
  const Index n = data.size();
  const int k = options.num_clusters;
  const int m = std::min<Index>(options.nystrom_landmarks, n);
  ALID_CHECK(k >= 1 && k <= n);
  ALID_CHECK(m >= k);
  ThreadPool* pool = options.pool;
  const int64_t grain = options.grain;

  Rng rng(options.seed);
  IndexList landmarks = rng.SampleWithoutReplacement(n, m);
  std::vector<bool> is_landmark(n, false);
  for (Index l : landmarks) is_landmark[l] = true;
  IndexList rest;
  rest.reserve(n - m);
  for (Index i = 0; i < n; ++i) {
    if (!is_landmark[i]) rest.push_back(i);
  }
  const Index nr = static_cast<Index>(rest.size());

  // Landmark block A (with the true kernel diagonal e^0 = 1, so the Nystrom
  // extension stays positive semi-definite) and cross block B. Row i owns
  // its cells (and the mirrored (j, i) for A), so both fills parallelize
  // with one writer per cell.
  const double p = affinity.params().p;
  DenseMatrix a(m, m, 0.0);
  ParallelChunks(pool, 0, m, grain, [&](int64_t, int64_t lo, int64_t hi) {
    for (int64_t ii = lo; ii < hi; ++ii) {
      const int i = static_cast<int>(ii);
      a(i, i) = 1.0;
      for (int j = i + 1; j < m; ++j) {
        const Scalar v = affinity.FromDistance(
            data.Distance(landmarks[i], landmarks[j], p));
        a(i, j) = v;
        a(j, i) = v;
      }
    }
  });
  DenseMatrix b(m, nr, 0.0);
  ParallelChunks(pool, 0, m, grain, [&](int64_t, int64_t lo, int64_t hi) {
    for (int64_t ii = lo; ii < hi; ++ii) {
      const int i = static_cast<int>(ii);
      for (Index j = 0; j < nr; ++j) {
        b(i, j) =
            affinity.FromDistance(data.Distance(landmarks[i], rest[j], p));
      }
    }
  });

  // Approximate degrees: d = [A 1 + B 1 ; B^T 1 + B^T A^{-1} (B 1)].
  EigenDecomposition eig_a = JacobiEigenSolver(a);
  auto apply_a_power = [&](std::span<const Scalar> x, double power) {
    // y = V diag(lambda^power) V^T x, with pseudo-inversion of tiny modes.
    std::vector<Scalar> proj(m, 0.0);
    for (int j = 0; j < m; ++j) {
      Scalar s = 0.0;
      for (int i = 0; i < m; ++i) s += eig_a.vectors(i, j) * x[i];
      const Scalar lam = eig_a.values[j];
      proj[j] = lam > 1e-10 ? s * std::pow(lam, power) : 0.0;
    }
    std::vector<Scalar> y(m, 0.0);
    for (int j = 0; j < m; ++j) {
      for (int i = 0; i < m; ++i) y[i] += eig_a.vectors(i, j) * proj[j];
    }
    return y;
  };

  std::vector<Scalar> ones_r(nr, 1.0);
  std::vector<Scalar> b1 = b.MatVec(ones_r);              // B 1
  std::vector<Scalar> a1(m, 0.0);                          // A 1
  for (int i = 0; i < m; ++i) {
    for (int j = 0; j < m; ++j) a1[i] += a(i, j);
  }
  std::vector<Scalar> ainv_b1 = apply_a_power(b1, -1.0);   // A^{-1} B 1
  std::vector<Scalar> d(n, 0.0);
  for (int i = 0; i < m; ++i) d[landmarks[i]] = a1[i] + b1[i];
  ParallelChunks(pool, 0, nr, grain, [&](int64_t, int64_t lo, int64_t hi) {
    for (int64_t j = lo; j < hi; ++j) {
      Scalar s = 0.0;
      for (int i = 0; i < m; ++i) s += b(i, j) * (1.0 + ainv_b1[i]);
      d[rest[j]] = s;
    }
  });
  for (Index i = 0; i < n; ++i) d[i] = d[i] > 0.0 ? 1.0 / std::sqrt(d[i]) : 0.0;

  // Normalize blocks: A_ij /= sqrt(d_i d_j), B_ij likewise.
  ParallelChunks(pool, 0, m, grain, [&](int64_t, int64_t lo, int64_t hi) {
    for (int64_t ii = lo; ii < hi; ++ii) {
      const int i = static_cast<int>(ii);
      for (int j = 0; j < m; ++j) a(i, j) *= d[landmarks[i]] * d[landmarks[j]];
      for (Index j = 0; j < nr; ++j) b(i, j) *= d[landmarks[i]] * d[rest[j]];
    }
  });

  // One-shot orthogonalization: S = A + A^{-1/2} B B^T A^{-1/2}.
  eig_a = JacobiEigenSolver(a);  // re-decompose the normalized A
  DenseMatrix bbt(m, m, 0.0);
  ParallelChunks(pool, 0, m, grain, [&](int64_t, int64_t lo, int64_t hi) {
    for (int64_t ii = lo; ii < hi; ++ii) {
      const int i = static_cast<int>(ii);
      for (int j = i; j < m; ++j) {
        Scalar s = 0.0;
        for (Index t = 0; t < nr; ++t) s += b(i, t) * b(j, t);
        bbt(i, j) = s;
        bbt(j, i) = s;
      }
    }
  });
  // A^{-1/2} as a dense matrix.
  DenseMatrix a_inv_half(m, m, 0.0);
  for (int c = 0; c < m; ++c) {
    std::vector<Scalar> e(m, 0.0);
    e[c] = 1.0;
    std::vector<Scalar> col = apply_a_power(e, -0.5);
    for (int r = 0; r < m; ++r) a_inv_half(r, c) = col[r];
  }
  auto matmul = [&](const DenseMatrix& x, const DenseMatrix& y) {
    DenseMatrix z(x.rows(), y.cols(), 0.0);
    for (Index r = 0; r < x.rows(); ++r) {
      for (Index t = 0; t < x.cols(); ++t) {
        const Scalar v = x(r, t);
        if (v == 0.0) continue;
        for (Index c = 0; c < y.cols(); ++c) z(r, c) += v * y(t, c);
      }
    }
    return z;
  };
  DenseMatrix s = matmul(matmul(a_inv_half, bbt), a_inv_half);
  for (int i = 0; i < m; ++i) {
    for (int j = 0; j < m; ++j) s(i, j) += a(i, j);
  }
  for (int i = 0; i < m; ++i) {       // symmetrize FP residue
    for (int j = i + 1; j < m; ++j) {
      const Scalar v = 0.5 * (s(i, j) + s(j, i));
      s(i, j) = v;
      s(j, i) = v;
    }
  }
  EigenDecomposition eig_s = JacobiEigenSolver(s);

  // V = [A; B^T] A^{-1/2} U Sigma^{-1/2}, top-k columns.
  DenseMatrix u_k(m, k, 0.0);
  for (int j = 0; j < k; ++j) {
    const Scalar lam = eig_s.values[j];
    const Scalar scale = lam > 1e-10 ? 1.0 / std::sqrt(lam) : 0.0;
    for (int i = 0; i < m; ++i) u_k(i, j) = eig_s.vectors(i, j) * scale;
  }
  DenseMatrix proj = matmul(a_inv_half, u_k);  // m x k
  DenseMatrix embedding(n, k, 0.0);
  // Landmark rows: A * proj ; rest rows: B^T * proj.
  DenseMatrix top = matmul(a, proj);
  for (int i = 0; i < m; ++i) {
    for (int j = 0; j < k; ++j) embedding(landmarks[i], j) = top(i, j);
  }
  ParallelChunks(pool, 0, nr, grain, [&](int64_t, int64_t lo, int64_t hi) {
    for (int64_t t = lo; t < hi; ++t) {
      for (int j = 0; j < k; ++j) {
        Scalar v = 0.0;
        for (int i = 0; i < m; ++i) v += b(i, t) * proj(i, j);
        embedding(rest[t], j) = v;
      }
    }
  });

  SpectralResult out;
  out.labels = ClusterEmbedding(std::move(embedding), k, options);
  return out;
}

}  // namespace alid
