#ifndef ALID_BASELINES_AP_H_
#define ALID_BASELINES_AP_H_

#include <cstdint>
#include <limits>
#include <vector>

#include "baselines/affinity_view.h"
#include "core/cluster.h"

namespace alid {

class ThreadPool;

/// Options of the Affinity Propagation baseline.
struct ApOptions {
  /// Message damping factor lambda in [0.5, 1). Frey & Dueck default to 0.5
  /// and recommend raising it only when messages oscillate; 0.7 converges on
  /// all our workloads while staying stable.
  double damping = 0.7;
  /// Hard iteration cap.
  int max_iterations = 500;
  /// Stop early when the exemplar set is unchanged for this many iterations.
  int convergence_iterations = 15;
  /// Shared preference s(k, k). NaN means "median of the similarities" —
  /// Frey & Dueck's default, which yields a moderate number of clusters.
  double preference = std::numeric_limits<double>::quiet_NaN();
  /// Magnitude of the deterministic tie-breaking jitter added to the
  /// similarities (Frey & Dueck's remedy for oscillation on symmetric
  /// inputs). Relative to each similarity value.
  double jitter = 1e-9;
  uint64_t jitter_seed = 42;
  /// Optional shared worker pool for the message sweeps. The responsibility
  /// update is row-independent and the availability update is
  /// column-independent (every edge has exactly one writer per sweep), so
  /// messages — and with them the exemplar set — are bit-identical for
  /// every pool width.
  ThreadPool* pool = nullptr;
  /// Chunk grain of the parallel sweeps (0 = ~64 fixed chunks).
  int64_t grain = 0;
};

/// Affinity Propagation (Frey & Dueck, Science 2007): exemplar-based
/// clustering by passing responsibility/availability messages along graph
/// edges. Implemented directly on the edge list of the AffinityView, so it
/// runs on the dense O(n^2) matrix or on a sparsified one (where message
/// passing is O(edges) per iteration — still the "very time consuming"
/// regime the paper observes when edges are many).
class ApDetector {
 public:
  ApDetector(AffinityView affinity, ApOptions options = {});

  /// Runs message passing and returns the exemplar-based clustering. Every
  /// item is assigned to some exemplar (AP partitions the data — its noise
  /// behaviour under Fig. 11's protocol follows from exactly this).
  /// Cluster densities are computed with uniform member weights.
  DetectionResult Detect() const;

 private:
  AffinityView affinity_;
  ApOptions options_;
};

}  // namespace alid

#endif  // ALID_BASELINES_AP_H_
