#include "baselines/mean_shift.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <span>

#include "common/check.h"
#include "common/parallel.h"
#include "common/random.h"

namespace alid {

namespace {

// Adaptive bandwidth: median distance to the ceil(sqrt(n))-th nearest
// neighbour over a sample of points. Each sampled point's k-th distance is
// independent work written to its own slot, so the estimate is identical for
// every pool width.
double EstimateBandwidth(const Dataset& data, Rng& rng,
                         const MeanShiftOptions& options) {
  const Index n = data.size();
  const int kth = std::max<int>(1, static_cast<int>(std::sqrt(double(n))));
  const int sample = std::min<Index>(n, 50);
  auto ids = rng.SampleWithoutReplacement(n, sample);
  std::vector<Scalar> kth_dists(ids.size(), 0.0);
  ParallelChunks(
      options.pool, 0, static_cast<int64_t>(ids.size()), options.grain,
      [&](int64_t, int64_t lo, int64_t hi) {
        std::vector<Scalar> dists;
        dists.reserve(n);
        for (int64_t s = lo; s < hi; ++s) {
          const Index i = ids[s];
          dists.clear();
          for (Index j = 0; j < n; ++j) {
            if (j != i) dists.push_back(std::sqrt(data.SquaredL2(i, j)));
          }
          const int k = std::min<int>(kth, static_cast<int>(dists.size()) - 1);
          std::nth_element(dists.begin(), dists.begin() + k, dists.end());
          kth_dists[s] = dists[k];
        }
      });
  std::nth_element(kth_dists.begin(), kth_dists.begin() + kth_dists.size() / 2,
                   kth_dists.end());
  return std::max<double>(kth_dists[kth_dists.size() / 2], 1e-9);
}

}  // namespace

MeanShiftResult RunMeanShift(const Dataset& data, MeanShiftOptions options) {
  const Index n = data.size();
  const int d = data.dim();
  ALID_CHECK(n > 0);
  Rng rng(options.seed);

  double h = options.bandwidth;
  if (h <= 0.0) h = EstimateBandwidth(data, rng, options);
  const double inv_2h2 = 1.0 / (2.0 * h * h);
  const double merge_d2 =
      (options.merge_fraction * h) * (options.merge_fraction * h);

  // Choose ascent starting points.
  IndexList starts;
  if (options.max_ascents > 0 && options.max_ascents < n) {
    starts = rng.SampleWithoutReplacement(n, options.max_ascents);
  } else {
    starts.resize(n);
    for (Index i = 0; i < n; ++i) starts[i] = i;
  }
  const int64_t num_starts = static_cast<int64_t>(starts.size());

  // Map stage: every ascent is an independent gradient trajectory over the
  // immutable dataset, written to its own row of `ascended`.
  std::vector<Scalar> ascended(static_cast<size_t>(num_starts) * d);
  ParallelChunks(
      options.pool, 0, num_starts, options.grain,
      [&](int64_t, int64_t lo, int64_t hi) {
        std::vector<Scalar> y(d), next(d);
        for (int64_t s = lo; s < hi; ++s) {
          auto row = data[starts[s]];
          y.assign(row.begin(), row.end());
          for (int iter = 0; iter < options.max_iterations; ++iter) {
            std::fill(next.begin(), next.end(), 0.0);
            Scalar weight_sum = 0.0;
            for (Index j = 0; j < n; ++j) {
              const Scalar d2 = SquaredL2(y, data[j]);
              const Scalar w = std::exp(-d2 * inv_2h2);
              weight_sum += w;
              auto vj = data[j];
              for (int t = 0; t < d; ++t) next[t] += w * vj[t];
            }
            if (weight_sum <= 0.0) break;
            Scalar shift2 = 0.0;
            for (int t = 0; t < d; ++t) {
              next[t] /= weight_sum;
              const Scalar delta = next[t] - y[t];
              shift2 += delta * delta;
            }
            y = next;
            if (shift2 < (options.shift_tolerance * h) *
                             (options.shift_tolerance * h)) {
              break;
            }
          }
          std::copy(y.begin(), y.end(),
                    ascended.begin() + static_cast<size_t>(s) * d);
        }
      });

  MeanShiftResult result;
  result.modes = Dataset(d);
  result.labels.assign(n, -1);

  // Reduce stage, sequential in start order: merge each converged point into
  // an existing mode or register a new one. Start order is fixed, so the
  // mode set and ids never depend on how the ascents were scheduled.
  for (int64_t s = 0; s < num_starts; ++s) {
    std::span<const Scalar> y{ascended.data() + static_cast<size_t>(s) * d,
                              static_cast<size_t>(d)};
    int mode = -1;
    for (Index m = 0; m < result.modes.size(); ++m) {
      if (SquaredL2(y, result.modes[m]) < merge_d2) {
        mode = static_cast<int>(m);
        break;
      }
    }
    if (mode < 0) {
      result.modes.Append(y);
      mode = result.modes.size() - 1;
    }
    result.labels[starts[s]] = mode;
  }

  // Assign any remaining points (when max_ascents subsampled) to the nearest
  // mode; each point owns its slot.
  ParallelChunks(options.pool, 0, n, options.grain,
                 [&](int64_t, int64_t lo, int64_t hi) {
                   for (int64_t ii = lo; ii < hi; ++ii) {
                     const Index i = static_cast<Index>(ii);
                     if (result.labels[i] >= 0) continue;
                     int best = 0;
                     Scalar best_d = std::numeric_limits<Scalar>::max();
                     for (Index m = 0; m < result.modes.size(); ++m) {
                       const Scalar d2 = SquaredL2(data[i], result.modes[m]);
                       if (d2 < best_d) {
                         best_d = d2;
                         best = static_cast<int>(m);
                       }
                     }
                     result.labels[i] = best;
                   }
                 });
  return result;
}

}  // namespace alid
