#include "baselines/ap.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <unordered_map>

#include "common/check.h"
#include "common/parallel.h"
#include "common/random.h"

namespace alid {

ApDetector::ApDetector(AffinityView affinity, ApOptions options)
    : affinity_(affinity), options_(options) {
  ALID_CHECK(options_.damping >= 0.0 && options_.damping < 1.0);
}

DetectionResult ApDetector::Detect() const {
  const Index n = affinity_.size();

  // --- Edge list (i-major), one self edge per node carrying the preference.
  std::vector<Index> src, dst;
  std::vector<Scalar> sim;
  std::vector<int64_t> row_start(n + 1, 0);
  {
    std::vector<Scalar> all_sims;
    for (Index i = 0; i < n; ++i) {
      affinity_.ForEachInRow(i, [&](Index j, Scalar v) {
        if (j != i) all_sims.push_back(v);
      });
    }
    Scalar pref = options_.preference;
    if (std::isnan(pref)) {
      if (all_sims.empty()) {
        pref = 0.0;
      } else {
        std::nth_element(all_sims.begin(),
                         all_sims.begin() + all_sims.size() / 2,
                         all_sims.end());
        pref = all_sims[all_sims.size() / 2];
      }
    }
    Rng jitter_rng(options_.jitter_seed);
    for (Index i = 0; i < n; ++i) {
      row_start[i] = static_cast<int64_t>(src.size());
      affinity_.ForEachInRow(i, [&](Index j, Scalar v) {
        if (j == i) return;
        src.push_back(i);
        dst.push_back(j);
        // Tiny asymmetric jitter breaks the oscillations AP exhibits on
        // exactly symmetric inputs (Frey & Dueck's published remedy).
        sim.push_back(v * (1.0 + options_.jitter * jitter_rng.Uniform()));
      });
      src.push_back(i);  // self edge
      dst.push_back(i);
      sim.push_back(pref);
    }
    row_start[n] = static_cast<int64_t>(src.size());
  }
  const size_t m = src.size();

  // Column grouping for the availability update.
  std::vector<std::vector<int64_t>> col_edges(n);
  for (size_t e = 0; e < m; ++e) col_edges[dst[e]].push_back(e);

  std::vector<Scalar> r(m, 0.0), a(m, 0.0);
  const Scalar lam = options_.damping;

  std::vector<bool> exemplar(n, false), prev_exemplar(n, false);
  int stable = 0;
  for (int iter = 0; iter < options_.max_iterations; ++iter) {
    // --- Responsibilities: r(i,k) = s(i,k) - max_{k' != k} (a(i,k')+s(i,k')).
    // Rows are independent (read a/sim, write only the row's r edges), so the
    // sweep runs chunked on the pool with bit-identical messages.
    ParallelChunks(
        options_.pool, 0, n, options_.grain,
        [&](int64_t, int64_t lo, int64_t hi) {
          for (int64_t ii = lo; ii < hi; ++ii) {
            const Index i = static_cast<Index>(ii);
            Scalar best = -std::numeric_limits<Scalar>::infinity();
            Scalar second = best;
            for (int64_t e = row_start[i]; e < row_start[i + 1]; ++e) {
              const Scalar v = a[e] + sim[e];
              if (v > best) {
                second = best;
                best = v;
              } else if (v > second) {
                second = v;
              }
            }
            for (int64_t e = row_start[i]; e < row_start[i + 1]; ++e) {
              const Scalar competitor = (a[e] + sim[e] == best) ? second : best;
              r[e] = lam * r[e] + (1.0 - lam) * (sim[e] - competitor);
            }
          }
        });
    // --- Availabilities: columns are independent (read r, write only the
    // column's a edges).
    ParallelChunks(
        options_.pool, 0, n, options_.grain,
        [&](int64_t, int64_t lo, int64_t hi) {
          for (int64_t kk = lo; kk < hi; ++kk) {
            const Index k = static_cast<Index>(kk);
            Scalar pos_sum = 0.0;
            Scalar r_kk = 0.0;
            for (int64_t e : col_edges[k]) {
              if (src[e] == k) {
                r_kk = r[e];
              } else if (r[e] > 0.0) {
                pos_sum += r[e];
              }
            }
            for (int64_t e : col_edges[k]) {
              Scalar next;
              if (src[e] == k) {
                next = pos_sum;  // a(k,k)
              } else {
                const Scalar own = r[e] > 0.0 ? r[e] : 0.0;
                next = std::min<Scalar>(0.0, r_kk + pos_sum - own);
              }
              a[e] = lam * a[e] + (1.0 - lam) * next;
            }
          }
        });
    // --- Exemplar set & convergence.
    for (Index k = 0; k < n; ++k) {
      const int64_t self = row_start[k + 1] - 1;  // self edge is last in row
      exemplar[k] = (r[self] + a[self]) > 0.0;
    }
    if (exemplar == prev_exemplar) {
      if (++stable >= options_.convergence_iterations) break;
    } else {
      stable = 0;
      prev_exemplar = exemplar;
    }
  }

  // Ensure at least one exemplar so every item can be assigned.
  if (std::none_of(exemplar.begin(), exemplar.end(),
                   [](bool b) { return b; })) {
    Index best = 0;
    Scalar best_v = -std::numeric_limits<Scalar>::infinity();
    for (Index k = 0; k < n; ++k) {
      const int64_t self = row_start[k + 1] - 1;
      if (r[self] + a[self] > best_v) {
        best_v = r[self] + a[self];
        best = k;
      }
    }
    exemplar[best] = true;
  }

  // --- Assignment: each item joins the reachable exemplar of max similarity;
  // exemplars join themselves; unreachable items become singletons.
  std::vector<Index> assigned_to(n);
  for (Index i = 0; i < n; ++i) {
    if (exemplar[i]) {
      assigned_to[i] = i;
      continue;
    }
    Index best = i;
    Scalar best_sim = -std::numeric_limits<Scalar>::infinity();
    for (int64_t e = row_start[i]; e < row_start[i + 1]; ++e) {
      if (exemplar[dst[e]] && sim[e] > best_sim) {
        best_sim = sim[e];
        best = dst[e];
      }
    }
    assigned_to[i] = best;
  }

  std::unordered_map<Index, IndexList> groups;
  for (Index i = 0; i < n; ++i) groups[assigned_to[i]].push_back(i);

  DetectionResult result;
  for (auto& [ex, members] : groups) {
    Cluster c;
    c.seed = ex;
    std::sort(members.begin(), members.end());
    c.members = std::move(members);
    const size_t sz = c.members.size();
    c.weights.assign(sz, 1.0 / static_cast<Scalar>(sz));
    // Uniform-weight density pi(x) = (1/sz^2) sum_ij a_ij.
    Scalar total = 0.0;
    for (Index i : c.members) {
      for (Index j : c.members) {
        if (i != j) total += affinity_.At(i, j);
      }
    }
    c.density = total / (static_cast<Scalar>(sz) * static_cast<Scalar>(sz));
    result.clusters.push_back(std::move(c));
  }
  std::sort(result.clusters.begin(), result.clusters.end(),
            [](const Cluster& x, const Cluster& y) {
              return x.density > y.density;
            });
  return result;
}

}  // namespace alid
