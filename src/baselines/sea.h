#ifndef ALID_BASELINES_SEA_H_
#define ALID_BASELINES_SEA_H_

#include <cstdint>
#include <vector>

#include "baselines/affinity_view.h"
#include "core/cluster.h"

namespace alid {

class ThreadPool;

/// Options of the Shrinking and Expansion Algorithm baseline.
struct SeaOptions {
  /// Cap on shrink/expand rounds per extraction.
  int max_rounds = 50;
  /// Replicator iterations per shrink phase.
  int rd_iterations = 200;
  /// RD convergence tolerance within a shrink phase.
  double rd_tolerance = 1e-9;
  /// Weights below this are dropped when the support shrinks.
  double support_threshold = 1e-6;
  /// Expansion adds neighbours j with pi(s_j, x) > pi(x) + this margin.
  double expansion_margin = 1e-12;
  /// Optional shared worker pool for the replicator sweeps. The A x product
  /// over the support is computed destination-row-wise (each support vertex
  /// accumulates its own row sequentially — valid because A is symmetric),
  /// so rows are independent and the dynamics are bit-identical for every
  /// pool width. Engaged only once the support outgrows
  /// kMinParallelSupport — a size-only gate, so results never depend on it.
  ThreadPool* pool = nullptr;
  /// Chunk grain of the parallel sweeps (0 = ~64 fixed chunks).
  int64_t grain = 0;

  static constexpr int kMinParallelSupport = 48;
};

/// The Shrinking and Expansion Algorithm of Liu, Latecki & Yan (TPAMI 2013):
/// replicator dynamics restricted to a small evolving subgraph. Each round
/// *shrinks* (runs RD on the current support until weak vertices die off)
/// and *expands* (adds neighbours whose average affinity to x exceeds the
/// density). Time and space are linear in the number of graph *edges*, so
/// SEA's scalability tracks the sparse degree of the affinity matrix —
/// exactly the sensitivity the paper discusses in Sections 2 and 5.1.
class SeaDetector {
 public:
  SeaDetector(AffinityView affinity, SeaOptions options = {});

  /// Grows a dense subgraph from one seed vertex over the active set.
  Cluster ExtractFrom(Index seed, const std::vector<bool>* active = nullptr)
      const;

  /// Peeling over seeds in index order, like the other detectors.
  DetectionResult DetectAll() const;

 private:
  AffinityView affinity_;
  SeaOptions options_;
};

}  // namespace alid

#endif  // ALID_BASELINES_SEA_H_
