#include "baselines/iid.h"

#include <algorithm>
#include <cmath>

#include "common/check.h"

namespace alid {

IidDetector::IidDetector(AffinityView affinity, IidOptions options)
    : affinity_(affinity), options_(options) {}

Cluster IidDetector::ExtractOne(const std::vector<bool>* active) const {
  const Index n = affinity_.size();
  // x starts at the barycenter of the active set.
  std::vector<Scalar> x(n, 0.0);
  Index active_count = 0;
  for (Index i = 0; i < n; ++i) {
    if (active == nullptr || (*active)[i]) {
      x[i] = 1.0;
      ++active_count;
    }
  }
  Cluster cluster;
  if (active_count == 0) return cluster;
  for (auto& v : x) v /= static_cast<Scalar>(active_count);

  std::vector<Scalar> ax = affinity_.MatVec(x);

  for (int iter = 0; iter < options_.max_iterations; ++iter) {
    Scalar pi = 0.0;
    for (Index i = 0; i < n; ++i) pi += x[i] * ax[i];

    // Vertex selection M(x) over the active range (Eq. 6).
    Index best = -1;
    Scalar best_abs = options_.tolerance;
    for (Index i = 0; i < n; ++i) {
      if (active != nullptr && !(*active)[i]) continue;
      const Scalar r = ax[i] - pi;
      if (r > 0.0 || (r < 0.0 && x[i] > 0.0)) {
        const Scalar a = std::abs(r);
        if (a > best_abs) {
          best_abs = a;
          best = i;
        }
      }
    }
    if (best < 0) break;  // gamma(x) empty: dense subgraph reached

    const Scalar r = ax[best] - pi;
    const Scalar pi_si_minus_x =
        affinity_.At(best, best) - 2.0 * ax[best] + pi;  // Eq. 11
    Scalar mu;
    if (r > 0.0) {
      Scalar eps = 1.0;
      if (pi_si_minus_x < 0.0) eps = std::min(-r / pi_si_minus_x, 1.0);
      mu = eps;
    } else {
      const Scalar ratio = x[best] / (x[best] - 1.0);
      const Scalar num = ratio * r;
      const Scalar den = ratio * ratio * pi_si_minus_x;
      Scalar eps = 1.0;
      if (den < 0.0) eps = std::min(-num / den, 1.0);
      mu = eps * ratio;
    }

    // Invasion (Eq. 13) + incremental A x maintenance.
    for (Index i = 0; i < n; ++i) x[i] *= (1.0 - mu);
    x[best] += mu;
    Scalar sum = 0.0;
    for (Index i = 0; i < n; ++i) {
      if (x[i] < options_.weight_epsilon) x[i] = 0.0;
      sum += x[i];
    }
    ALID_CHECK_MSG(sum > 0.0, "IID lost all weight");
    const Scalar inv = 1.0 / sum;
    for (Index i = 0; i < n; ++i) x[i] *= inv;

    // ax <- ((1 - mu) ax + mu * A(:, best)) / sum. A is symmetric, so the
    // column equals the row; sparse rows update only their support.
    for (Index i = 0; i < n; ++i) ax[i] *= (1.0 - mu) * inv;
    affinity_.ForEachInRow(best, [&](Index j, Scalar a) {
      ax[j] += mu * inv * a;
    });
  }

  Scalar pi = 0.0;
  for (Index i = 0; i < n; ++i) pi += x[i] * ax[i];
  cluster.density = pi;
  for (Index i = 0; i < n; ++i) {
    if (x[i] > 0.0) {
      cluster.members.push_back(i);
      cluster.weights.push_back(x[i]);
    }
  }
  return cluster;
}

DetectionResult IidDetector::DetectAll() const {
  const Index n = affinity_.size();
  std::vector<bool> active(n, true);
  Index remaining = n;
  DetectionResult result;
  while (remaining > 0) {
    Cluster c = ExtractOne(&active);
    if (c.members.empty()) break;
    for (Index i : c.members) {
      if (active[i]) {
        active[i] = false;
        --remaining;
      }
    }
    result.clusters.push_back(std::move(c));
  }
  return result;
}

}  // namespace alid
