#ifndef ALID_BASELINES_AFFINITY_VIEW_H_
#define ALID_BASELINES_AFFINITY_VIEW_H_

#include <functional>
#include <span>
#include <vector>

#include "common/matrix.h"
#include "common/sparse_matrix.h"
#include "common/types.h"

namespace alid {

/// A non-owning view over an affinity matrix that is either dense (the
/// baselines' default O(n^2) materialization) or CSR (the LSH-sparsified
/// setting of Section 5.1). All canonical baselines (IID, DS/RD, SEA, AP)
/// program against this view, so each runs unchanged in both regimes — the
/// comparison the paper's Figure 6 makes.
class AffinityView {
 public:
  explicit AffinityView(const DenseMatrix* dense) : dense_(dense) {}
  explicit AffinityView(const SparseMatrix* sparse) : sparse_(sparse) {}

  Index size() const { return dense_ != nullptr ? dense_->rows() : sparse_->rows(); }

  /// Entry A(i, j).
  Scalar At(Index i, Index j) const {
    return dense_ != nullptr ? (*dense_)(i, j) : sparse_->At(i, j);
  }

  /// (A x)_r.
  Scalar RowDot(Index r, std::span<const Scalar> x) const;

  /// y = A x.
  std::vector<Scalar> MatVec(std::span<const Scalar> x) const;

  /// x^T A x.
  Scalar QuadraticForm(std::span<const Scalar> x) const;

  /// Visits the structurally non-zero entries of row r (dense: all of them).
  void ForEachInRow(Index r,
                    const std::function<void(Index, Scalar)>& fn) const;

  bool is_dense() const { return dense_ != nullptr; }

 private:
  const DenseMatrix* dense_ = nullptr;
  const SparseMatrix* sparse_ = nullptr;
};

}  // namespace alid

#endif  // ALID_BASELINES_AFFINITY_VIEW_H_
