#ifndef ALID_BASELINES_REPLICATOR_H_
#define ALID_BASELINES_REPLICATOR_H_

#include <vector>

#include "baselines/affinity_view.h"
#include "core/cluster.h"

namespace alid {

/// Options of the replicator-dynamics / dominant-set baseline.
struct ReplicatorOptions {
  /// Iteration cap per extraction. RD converges linearly, so it needs many
  /// more iterations than IID — the paper's "time consuming replicator
  /// dynamics" remark (Section 5.1).
  int max_iterations = 2000;
  /// Stop when the L1 change of x per iteration falls below this.
  double tolerance = 1e-10;
  /// Weights below this are treated as outside the support when the final
  /// dominant set is read off (RD never reaches exact zeros in finite time).
  double support_threshold = 1e-5;
};

/// Discrete-time replicator dynamics x_i <- x_i (A x)_i / (x^T A x) — the
/// payoff-monotone dynamics of Weibull's EGT — run to a fixed point.
/// `x` is modified in place; entries of inactive vertices must already be 0.
/// Returns the number of iterations performed.
int RunReplicatorDynamics(const AffinityView& affinity,
                          std::vector<Scalar>& x,
                          const ReplicatorOptions& options);

/// The Dominant Set method of Pavan & Pelillo (TPAMI 2007): solve the StQP
/// of Eq. 3 with replicator dynamics from the barycenter, read off the
/// support as a dominant set, peel, repeat.
class DominantSetDetector {
 public:
  DominantSetDetector(AffinityView affinity, ReplicatorOptions options = {});

  /// Extracts one dominant set over the active vertices (nullptr = all).
  Cluster ExtractOne(const std::vector<bool>* active = nullptr) const;

  /// Peeling loop over the whole graph.
  DetectionResult DetectAll() const;

 private:
  AffinityView affinity_;
  ReplicatorOptions options_;
};

}  // namespace alid

#endif  // ALID_BASELINES_REPLICATOR_H_
