#include "baselines/sea.h"

#include <algorithm>
#include <cmath>
#include <unordered_map>
#include <unordered_set>

#include "common/check.h"
#include "common/parallel.h"

namespace alid {

SeaDetector::SeaDetector(AffinityView affinity, SeaOptions options)
    : affinity_(affinity), options_(options) {}

Cluster SeaDetector::ExtractFrom(Index seed,
                                 const std::vector<bool>* active) const {
  ALID_CHECK(seed >= 0 && seed < affinity_.size());
  auto is_active = [&](Index i) {
    return active == nullptr || (*active)[i];
  };
  ALID_CHECK(is_active(seed));

  // Local state: support list S with weights x (parallel arrays) plus a
  // membership map for O(1) lookups.
  IndexList support{seed};
  std::vector<Scalar> x{1.0};
  std::unordered_map<Index, int> pos{{seed, 0}};

  // Initial expansion: the seed's neighbourhood.
  affinity_.ForEachInRow(seed, [&](Index j, Scalar) {
    if (j != seed && is_active(j) && pos.emplace(j, support.size()).second) {
      support.push_back(j);
      x.push_back(0.0);
    }
  });
  if (support.size() > 1) {
    const Scalar u = 1.0 / static_cast<Scalar>(support.size());
    for (auto& w : x) w = u;
  }

  Scalar density = 0.0;
  for (int round = 0; round < options_.max_rounds; ++round) {
    const int s = static_cast<int>(support.size());
    // Size-only gate: tiny supports are not worth the chunk bookkeeping, and
    // because serial and pooled execution share the same chunk decomposition
    // the gate can never change a weight.
    ThreadPool* pool =
        s >= SeaOptions::kMinParallelSupport ? options_.pool : nullptr;

    // --- Shrink: replicator dynamics restricted to the local subgraph.
    // (A x)_b is accumulated destination-row-wise — row b walks its own
    // adjacency and gathers x over the support — which is equivalent to the
    // scatter form because A is symmetric, and makes rows independent.
    std::vector<Scalar> ax(s, 0.0);
    for (int it = 0; it < options_.rd_iterations; ++it) {
      ParallelChunks(pool, 0, s, options_.grain,
                     [&](int64_t, int64_t lo, int64_t hi) {
                       for (int64_t b = lo; b < hi; ++b) {
                         Scalar acc = 0.0;
                         affinity_.ForEachInRow(
                             support[b], [&](Index j, Scalar v) {
                               auto p = pos.find(j);
                               if (p != pos.end()) acc += v * x[p->second];
                             });
                         ax[b] = acc;
                       }
                     });
      const Scalar pi =
          ParallelSum(pool, 0, s, options_.grain, [&](int64_t lo, int64_t hi) {
            Scalar partial = 0.0;
            for (int64_t a = lo; a < hi; ++a) partial += x[a] * ax[a];
            return partial;
          });
      if (pi <= 0.0) break;
      Scalar change = 0.0;
      for (int a = 0; a < s; ++a) {
        const Scalar next = x[a] * ax[a] / pi;
        change += std::abs(next - x[a]);
        x[a] = next;
      }
      if (change < options_.rd_tolerance) break;
    }
    // Drop weak vertices from the support.
    IndexList new_support;
    std::vector<Scalar> new_x;
    Scalar kept = 0.0;
    for (int a = 0; a < s; ++a) {
      if (x[a] > options_.support_threshold) {
        new_support.push_back(support[a]);
        new_x.push_back(x[a]);
        kept += x[a];
      }
    }
    if (new_support.empty()) {  // isolated seed
      new_support.push_back(seed);
      new_x.push_back(1.0);
      kept = 1.0;
    }
    for (auto& w : new_x) w /= kept;
    support = std::move(new_support);
    x = std::move(new_x);
    pos.clear();
    for (size_t a = 0; a < support.size(); ++a) {
      pos[support[a]] = static_cast<int>(a);
    }

    // Current density pi(x) over the local subgraph (destination-row form,
    // like the shrink sweep — the support just changed size, so re-gate).
    const int kept_s = static_cast<int>(support.size());
    ThreadPool* kept_pool =
        kept_s >= SeaOptions::kMinParallelSupport ? options_.pool : nullptr;
    density = ParallelSum(
        kept_pool, 0, kept_s, options_.grain, [&](int64_t lo, int64_t hi) {
          Scalar partial = 0.0;
          for (int64_t a = lo; a < hi; ++a) {
            Scalar row = 0.0;
            affinity_.ForEachInRow(support[a], [&](Index j, Scalar v) {
              auto p = pos.find(j);
              if (p != pos.end()) row += v * x[p->second];
            });
            partial += x[a] * row;
          }
          return partial;
        });

    // --- Expand: add neighbours with pi(s_j, x) > pi(x).
    std::unordered_map<Index, Scalar> affinity_to_x;  // candidate -> pi(s_j,x)
    for (size_t a = 0; a < support.size(); ++a) {
      if (x[a] == 0.0) continue;
      affinity_.ForEachInRow(support[a], [&](Index j, Scalar v) {
        if (pos.count(j) != 0 || !is_active(j)) return;
        affinity_to_x[j] += v * x[a];
      });
    }
    IndexList newcomers;
    for (const auto& [j, aff] : affinity_to_x) {
      if (aff > density + options_.expansion_margin) newcomers.push_back(j);
    }
    if (newcomers.empty()) break;

    // Newcomers enter with a small uniform share; existing weights scale down.
    const Scalar share = 0.5 / static_cast<Scalar>(
        support.size() + newcomers.size());
    const Scalar scale = 1.0 - share * static_cast<Scalar>(newcomers.size());
    for (auto& w : x) w *= scale;
    for (Index j : newcomers) {
      pos[j] = static_cast<int>(support.size());
      support.push_back(j);
      x.push_back(share);
    }
  }

  Cluster cluster;
  cluster.seed = seed;
  cluster.density = density;
  std::vector<std::pair<Index, Scalar>> pairs;
  for (size_t a = 0; a < support.size(); ++a) {
    pairs.emplace_back(support[a], x[a]);
  }
  std::sort(pairs.begin(), pairs.end());
  for (const auto& [g, w] : pairs) {
    cluster.members.push_back(g);
    cluster.weights.push_back(w);
  }
  return cluster;
}

DetectionResult SeaDetector::DetectAll() const {
  const Index n = affinity_.size();
  std::vector<bool> active(n, true);
  DetectionResult result;
  for (Index seed = 0; seed < n; ++seed) {
    if (!active[seed]) continue;
    Cluster c = ExtractFrom(seed, &active);
    for (Index i : c.members) active[i] = false;
    result.clusters.push_back(std::move(c));
  }
  return result;
}

}  // namespace alid
