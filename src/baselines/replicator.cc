#include "baselines/replicator.h"

#include <cmath>

#include "common/check.h"

namespace alid {

int RunReplicatorDynamics(const AffinityView& affinity, std::vector<Scalar>& x,
                          const ReplicatorOptions& options) {
  const Index n = affinity.size();
  ALID_CHECK(static_cast<Index>(x.size()) == n);
  int iter = 0;
  for (; iter < options.max_iterations; ++iter) {
    std::vector<Scalar> ax = affinity.MatVec(x);
    Scalar pi = 0.0;
    for (Index i = 0; i < n; ++i) pi += x[i] * ax[i];
    if (pi <= 0.0) break;  // isolated support: no payoff anywhere
    Scalar change = 0.0;
    for (Index i = 0; i < n; ++i) {
      const Scalar next = x[i] * ax[i] / pi;
      change += std::abs(next - x[i]);
      x[i] = next;
    }
    if (change < options.tolerance) break;
  }
  return iter;
}

DominantSetDetector::DominantSetDetector(AffinityView affinity,
                                         ReplicatorOptions options)
    : affinity_(affinity), options_(options) {}

Cluster DominantSetDetector::ExtractOne(
    const std::vector<bool>* active) const {
  const Index n = affinity_.size();
  std::vector<Scalar> x(n, 0.0);
  Index count = 0;
  for (Index i = 0; i < n; ++i) {
    if (active == nullptr || (*active)[i]) {
      x[i] = 1.0;
      ++count;
    }
  }
  Cluster cluster;
  if (count == 0) return cluster;
  for (auto& v : x) v /= static_cast<Scalar>(count);

  RunReplicatorDynamics(affinity_, x, options_);

  cluster.density = affinity_.QuadraticForm(x);
  Scalar kept = 0.0;
  for (Index i = 0; i < n; ++i) {
    if (x[i] > options_.support_threshold) {
      cluster.members.push_back(i);
      cluster.weights.push_back(x[i]);
      kept += x[i];
    }
  }
  if (cluster.members.empty()) {
    // Degenerate (e.g., zero payoff everywhere): report the heaviest vertex.
    Index best = 0;
    for (Index i = 1; i < n; ++i) {
      if (x[i] > x[best]) best = i;
    }
    cluster.members.push_back(best);
    cluster.weights.push_back(1.0);
    return cluster;
  }
  for (auto& w : cluster.weights) w /= kept;
  return cluster;
}

DetectionResult DominantSetDetector::DetectAll() const {
  const Index n = affinity_.size();
  std::vector<bool> active(n, true);
  Index remaining = n;
  DetectionResult result;
  while (remaining > 0) {
    Cluster c = ExtractOne(&active);
    if (c.members.empty()) break;
    for (Index i : c.members) {
      if (active[i]) {
        active[i] = false;
        --remaining;
      }
    }
    result.clusters.push_back(std::move(c));
  }
  return result;
}

}  // namespace alid
