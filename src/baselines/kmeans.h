#ifndef ALID_BASELINES_KMEANS_H_
#define ALID_BASELINES_KMEANS_H_

#include <vector>

#include "common/dataset.h"
#include "common/types.h"

namespace alid {

/// Options of the k-means baseline.
struct KMeansOptions {
  /// Lloyd iteration cap.
  int max_iterations = 100;
  /// Stop when no assignment changes.
  uint64_t seed = 42;
  /// Independent restarts; the best-SSE run wins.
  int restarts = 1;
};

/// Result of a k-means run.
struct KMeansResult {
  /// Cluster id per point, in [0, k).
  std::vector<int> labels;
  /// Cluster centers, k rows.
  Dataset centers;
  /// Sum of squared distances to the assigned centers.
  Scalar sse = 0.0;
  int iterations = 0;
};

/// Lloyd's k-means with k-means++ seeding — the canonical partitioning
/// baseline of the noise-resistance analysis (Appendix C) and the final
/// grouping step of spectral clustering.
KMeansResult RunKMeans(const Dataset& data, int k, KMeansOptions options = {});

}  // namespace alid

#endif  // ALID_BASELINES_KMEANS_H_
