#ifndef ALID_BASELINES_KMEANS_H_
#define ALID_BASELINES_KMEANS_H_

#include <cstdint>
#include <vector>

#include "common/dataset.h"
#include "common/types.h"

namespace alid {

class ThreadPool;

/// Options of the k-means baseline.
struct KMeansOptions {
  /// Lloyd iteration cap.
  int max_iterations = 100;
  /// Stop when no assignment changes.
  uint64_t seed = 42;
  /// Independent restarts; the best-SSE run wins.
  int restarts = 1;
  /// Optional shared worker pool for the assignment/reduction hot loop and
  /// the k-means++ distance updates; nullptr runs serially. Labels, centers
  /// and SSE are bit-identical for every pool width: chunk boundaries depend
  /// only on n and `grain`, and the centroid partial sums reduce in chunk
  /// order.
  ThreadPool* pool = nullptr;
  /// Chunk grain of the parallel loops (0 = ~64 fixed chunks). Part of the
  /// FP reduction order: a fixed grain fixes the result exactly.
  int64_t grain = 0;
};

/// Result of a k-means run.
struct KMeansResult {
  /// Cluster id per point, in [0, k).
  std::vector<int> labels;
  /// Cluster centers, k rows.
  Dataset centers;
  /// Sum of squared distances to the assigned centers.
  Scalar sse = 0.0;
  int iterations = 0;
  /// SSE after each Lloyd assignment step (of the winning restart) —
  /// monotonically non-increasing, which the stress harness asserts to lock
  /// in the parallel reduction's correctness.
  std::vector<Scalar> sse_history;
};

/// Lloyd's k-means with k-means++ seeding — the canonical partitioning
/// baseline of the noise-resistance analysis (Appendix C) and the final
/// grouping step of spectral clustering.
KMeansResult RunKMeans(const Dataset& data, int k, KMeansOptions options = {});

}  // namespace alid

#endif  // ALID_BASELINES_KMEANS_H_
