#ifndef ALID_BASELINES_SPECTRAL_H_
#define ALID_BASELINES_SPECTRAL_H_

#include <cstdint>
#include <vector>

#include "affinity/affinity_function.h"
#include "common/dataset.h"
#include "common/types.h"

namespace alid {

class ThreadPool;

/// Options of the spectral-clustering baselines.
struct SpectralOptions {
  /// Number of clusters K (the partitioning methods require it up front —
  /// the structural weakness Appendix C probes).
  int num_clusters = 2;
  /// Landmarks sampled by the Nystrom variant (SC-NYS).
  int nystrom_landmarks = 100;
  /// Randomness for Lanczos starts, landmark sampling and k-means.
  uint64_t seed = 42;
  /// k-means restarts on the spectral embedding.
  int kmeans_restarts = 3;
  /// Optional shared worker pool, threaded through every hot layer: the
  /// affinity-row construction, the Lanczos matvecs (SC-FL), the Nystrom
  /// block fills, and the final k-means. All reductions are chunk-ordered,
  /// so labels are bit-identical for every pool width.
  ThreadPool* pool = nullptr;
  /// Chunk grain of the parallel loops (0 = ~64 fixed chunks).
  int64_t grain = 0;
};

/// Result: a hard partition of all n items into num_clusters groups.
struct SpectralResult {
  std::vector<int> labels;
};

/// SC-FL — spectral clustering on the *full* affinity matrix (Ng, Jordan &
/// Weiss, NIPS 2002): symmetric normalized Laplacian, top-K eigenvectors (by
/// Lanczos on a matvec closure; the O(n^2) matrix is still materialized, as
/// in the paper's comparison), row-normalized embedding, k-means.
SpectralResult SpectralClusterFull(const Dataset& data,
                                   const AffinityFunction& affinity,
                                   SpectralOptions options = {});

/// SC-NYS — spectral clustering with the Nystrom approximation (Fowlkes et
/// al., TPAMI 2004): m landmark columns, one-shot orthogonalization via the
/// m x m eigenproblem (Jacobi), approximate leading eigenvectors, k-means.
SpectralResult SpectralClusterNystrom(const Dataset& data,
                                      const AffinityFunction& affinity,
                                      SpectralOptions options = {});

}  // namespace alid

#endif  // ALID_BASELINES_SPECTRAL_H_
