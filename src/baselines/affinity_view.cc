#include "baselines/affinity_view.h"

#include "common/check.h"

namespace alid {

Scalar AffinityView::RowDot(Index r, std::span<const Scalar> x) const {
  if (dense_ != nullptr) {
    auto row = dense_->Row(r);
    Scalar s = 0.0;
    for (size_t c = 0; c < row.size(); ++c) s += row[c] * x[c];
    return s;
  }
  return sparse_->RowDot(r, x);
}

std::vector<Scalar> AffinityView::MatVec(std::span<const Scalar> x) const {
  return dense_ != nullptr ? dense_->MatVec(x) : sparse_->MatVec(x);
}

Scalar AffinityView::QuadraticForm(std::span<const Scalar> x) const {
  return dense_ != nullptr ? dense_->QuadraticForm(x)
                           : sparse_->QuadraticForm(x);
}

void AffinityView::ForEachInRow(
    Index r, const std::function<void(Index, Scalar)>& fn) const {
  if (dense_ != nullptr) {
    auto row = dense_->Row(r);
    for (Index c = 0; c < static_cast<Index>(row.size()); ++c) {
      if (row[c] != 0.0) fn(c, row[c]);
    }
    return;
  }
  auto idx = sparse_->RowIndices(r);
  auto val = sparse_->RowValues(r);
  for (size_t k = 0; k < idx.size(); ++k) fn(idx[k], val[k]);
}

}  // namespace alid
