#include "shard/shard_router.h"

#include <algorithm>
#include <array>
#include <map>
#include <mutex>

#include "affinity/affinity_function.h"
#include "common/check.h"
#include "common/dataset.h"
#include "common/parallel.h"
#include "common/timer.h"
#include "obs/trace.h"

namespace alid {

ShardRouter::ShardRouter(int dim, int num_shards, ShardRouterOptions options)
    : dim_(dim), num_shards_(num_shards), options_(options) {
  ALID_CHECK(dim_ > 0);
  ALID_CHECK(num_shards_ >= 1);
  auto& reg = metrics_.registry;
  metrics_.queries = reg.AddCounter("router_queries");
  metrics_.points = reg.AddCounter("router_points");
  metrics_.fanout = reg.AddCounter("shard_fanout_queries");
  metrics_.topk_queries = reg.AddCounter("router_topk_queries");
  metrics_.publishes = reg.AddCounter("router_publishes");
  metrics_.offline_queries = reg.AddCounter("router_offline_queries");
  metrics_.stale_generation = reg.AddCounter("router_stale_generation");
  metrics_.sketch_prunes = reg.AddCounter("router_sketch_prunes");
  metrics_.sketch_exact = reg.AddCounter("router_sketch_exact");
  metrics_.query_seconds.AttachHistogram(
      reg.AddHistogram("router_query_seconds", obs::LatencyHistogramEdges()));
  metrics_.publish_seconds.AttachHistogram(
      reg.AddHistogram("router_publish_seconds", obs::LatencyHistogramEdges()));
  reg.AddCallbackGauge("router_generation", [this]() {
    std::shared_lock<std::shared_mutex> lock(snapshot_mu_);
    return current_ == nullptr ? int64_t{0}
                               : static_cast<int64_t>(current_->generation);
  });
}

uint64_t ShardRouter::PublishFromStream(const ShardedStream& stream) {
  ALID_TRACE_SCOPE("router", "publish");
  ALID_CHECK(stream.num_shards() == num_shards_);
  ALID_CHECK(stream.dim() == dim_);
  WallTimer timer;
  auto next = std::make_shared<ShardedSnapshot>();
  next->generation = static_cast<uint64_t>(stream.size());
  next->shards.resize(static_cast<size_t>(num_shards_));
  if (previous_.empty()) {
    previous_.resize(static_cast<size_t>(num_shards_));
  }
  // Per-shard incremental exports, concurrently — each chains against the
  // shard's previously published snapshot, so a steady-state publish costs
  // only each shard's changed bytes.
  ParallelChunks(options_.pool, 0, num_shards_, /*grain=*/1,
                 [&](int64_t, int64_t lo, int64_t hi) {
                   for (int64_t s = lo; s < hi; ++s) {
                     const auto idx = static_cast<size_t>(s);
                     next->shards[idx] = ClusterSnapshot::FromStream(
                         stream.shard(static_cast<int>(s)), options_.pool,
                         previous_[idx]);
                   }
                 });
  previous_ = next->shards;
  {
    std::unique_lock<std::shared_mutex> lock(snapshot_mu_);
    current_ = std::move(next);
  }
  metrics_.publishes->Add(1);
  metrics_.publish_seconds.Record(timer.Seconds());
  return generation();
}

void ShardRouter::Unpublish() {
  std::shared_ptr<const ShardedSnapshot> retired;
  {
    std::unique_lock<std::shared_mutex> lock(snapshot_mu_);
    retired = std::move(current_);
    current_ = nullptr;
  }
  previous_.clear();
  // `retired` releases outside the critical section.
}

std::shared_ptr<const ShardedSnapshot> ShardRouter::snapshot() const {
  std::shared_lock<std::shared_mutex> lock(snapshot_mu_);
  return current_;
}

uint64_t ShardRouter::generation() const {
  std::shared_lock<std::shared_mutex> lock(snapshot_mu_);
  return current_ == nullptr ? 0 : current_->generation;
}

std::shared_ptr<const ShardedSnapshot> ShardRouter::SnapshotAt(
    uint64_t generation) const {
  std::shared_lock<std::shared_mutex> lock(snapshot_mu_);
  if (current_ == nullptr) return nullptr;
  if (generation != 0 && generation != current_->generation) return nullptr;
  return current_;
}

ShardedQueryResponse ShardRouter::Query(const QueryRequest& request) const {
  ALID_TRACE_SCOPE("router", "query");
  WallTimer timer;
  ALID_CHECK(request.points.size() % static_cast<size_t>(dim_) == 0);
  const Index count = static_cast<Index>(request.points.size()) / dim_;
  ShardedQueryResponse response;
  const bool ranked_mode = request.top_k > 0;
  if (ranked_mode) {
    response.ranked.resize(static_cast<size_t>(count));
  } else {
    response.assignments.resize(static_cast<size_t>(count));
  }

  // The linearization point: ONE pinned generation answers every point of
  // the request across every shard, no matter how publishers race.
  const std::shared_ptr<const ShardedSnapshot> pinned = snapshot();
  if (pinned == nullptr) {
    metrics_.offline_queries->Add(1);
    response.status = QueryStatus::kOffline;
    return response;
  }
  if (request.generation != 0 && request.generation != pinned->generation) {
    metrics_.stale_generation->Add(1);
    response.status = QueryStatus::kGenerationUnavailable;
    return response;
  }
  response.status = QueryStatus::kOk;
  response.generation = pinned->generation;
  if (count == 0) {
    metrics_.queries->Add(1);
    metrics_.query_seconds.Record(timer.Seconds());
    return response;
  }

  const auto& shards = pinned->shards;
  const int num_shards = static_cast<int>(shards.size());

  if (!ranked_mode) {
    ParallelChunks(
        options_.pool, 0, count, options_.grain,
        [&](int64_t, int64_t lo, int64_t hi) {
          const size_t n = static_cast<size_t>(hi - lo);
          std::vector<AssignOutcome> outcomes(n);
          const auto chunk_points = request.points.subspan(
              static_cast<size_t>(lo) * dim_, n * static_cast<size_t>(dim_));
          int64_t prunes = 0;
          int64_t exact = 0;
          for (int s = 0; s < num_shards; ++s) {
            if (shards[static_cast<size_t>(s)]->num_clusters() == 0) continue;
            shards[static_cast<size_t>(s)]->AssignBatch(
                chunk_points, {outcomes.data(), outcomes.size()});
            for (size_t i = 0; i < n; ++i) {
              prunes += outcomes[i].sketch_prunes;
              exact += outcomes[i].sketch_exact;
              if (outcomes[i].cluster < 0) continue;
              ShardAssignment& best =
                  response.assignments[static_cast<size_t>(lo) + i];
              // Strictly-greater replacement: equal margins keep the
              // earlier (lower) shard, and each shard already prefers its
              // lowest cluster id — the ascending-(shard, cluster)
              // tie-break of the merge contract.
              if (best.cluster < 0 || outcomes[i].margin > best.margin) {
                static_cast<QueryOutcome&>(best) = outcomes[i];
                best.shard = s;
              }
            }
          }
          for (size_t i = 0; i < n; ++i) {
            response.assignments[static_cast<size_t>(lo) + i].generation =
                pinned->generation;
          }
          if (prunes > 0) metrics_.sketch_prunes->Add(prunes);
          if (exact > 0) metrics_.sketch_exact->Add(exact);
        });
  } else {
    ParallelChunks(
        options_.pool, 0, count, options_.grain,
        [&](int64_t, int64_t lo, int64_t hi) {
          for (int64_t q = lo; q < hi; ++q) {
            const auto point = request.points.subspan(
                static_cast<size_t>(q) * dim_, static_cast<size_t>(dim_));
            std::vector<ShardScoredCluster> merged;
            for (int s = 0; s < num_shards; ++s) {
              const std::vector<ScoredCluster> scored =
                  shards[static_cast<size_t>(s)]->TopKClusters(point,
                                                               request.top_k);
              for (const ScoredCluster& sc : scored) {
                ShardScoredCluster out;
                static_cast<ScoredCluster&>(out) = sc;
                out.shard = s;
                out.generation = pinned->generation;
                merged.push_back(out);
              }
            }
            // Total order (affinity desc, shard asc, cluster asc): no two
            // distinct candidates compare equal, so the merged ranking is
            // deterministic whatever sort runs underneath.
            std::sort(merged.begin(), merged.end(),
                      [](const ShardScoredCluster& a,
                         const ShardScoredCluster& b) {
                        if (a.affinity != b.affinity)
                          return a.affinity > b.affinity;
                        if (a.shard != b.shard) return a.shard < b.shard;
                        return a.cluster < b.cluster;
                      });
            if (static_cast<int>(merged.size()) > request.top_k) {
              merged.resize(static_cast<size_t>(request.top_k));
            }
            response.ranked[static_cast<size_t>(q)] = std::move(merged);
          }
        });
    metrics_.topk_queries->Add(count);
  }

  metrics_.queries->Add(1);
  metrics_.points->Add(count);
  metrics_.fanout->Add(static_cast<int64_t>(count) * num_shards);
  metrics_.query_seconds.Record(timer.Seconds());
  return response;
}

std::vector<BoundaryPair> ShardRouter::BoundaryClusters(
    const AffinityParams& affinity) const {
  ALID_TRACE_SCOPE("router", "boundary_report");
  std::vector<BoundaryPair> report;
  const std::shared_ptr<const ShardedSnapshot> pinned = snapshot();
  if (pinned == nullptr) return report;

  // Every (table, bucket key) a cluster's members occupy, deduplicated per
  // cluster. The per-shard LSH indices share projections (same LshParams
  // seed), so equal keys mean the same bucket of the same table.
  struct BucketRef {
    int table;
    uint64_t key;
    int shard;
    int cluster;

    bool operator<(const BucketRef& o) const {
      if (table != o.table) return table < o.table;
      if (key != o.key) return key < o.key;
      if (shard != o.shard) return shard < o.shard;
      return cluster < o.cluster;
    }
    bool operator==(const BucketRef&) const = default;
  };
  std::vector<BucketRef> refs;
  for (int s = 0; s < static_cast<int>(pinned->shards.size()); ++s) {
    const auto blocks = pinned->shards[static_cast<size_t>(s)]->blocks();
    for (int c = 0; c < static_cast<int>(blocks.size()); ++c) {
      const ClusterBlock& block = *blocks[static_cast<size_t>(c)];
      const int kpm = block.keys_per_member;
      for (Index m = 0; m < block.count; ++m) {
        for (int t = 0; t < kpm; ++t) {
          refs.push_back(BucketRef{
              t, block.member_keys[static_cast<size_t>(m) * kpm + t], s, c});
        }
      }
    }
  }
  std::sort(refs.begin(), refs.end());
  refs.erase(std::unique(refs.begin(), refs.end()), refs.end());

  // Count shared buckets per cross-shard cluster pair. The map key orders
  // the report ascending by (shard_a, cluster_a, shard_b, cluster_b).
  std::map<std::array<int, 4>, int64_t> pairs;
  size_t lo = 0;
  while (lo < refs.size()) {
    size_t hi = lo;
    while (hi < refs.size() && refs[hi].table == refs[lo].table &&
           refs[hi].key == refs[lo].key) {
      ++hi;
    }
    for (size_t i = lo; i < hi; ++i) {
      for (size_t j = i + 1; j < hi; ++j) {
        if (refs[i].shard == refs[j].shard) continue;
        ++pairs[{refs[i].shard, refs[i].cluster, refs[j].shard,
                 refs[j].cluster}];
      }
    }
    lo = hi;
  }

  // Exact cross density of each colliding pair, in one fixed double-loop
  // order — the same weighted pair sum the stream's merge rule
  // (InstallPoolCluster) evaluates, so a reconciliation pass can apply the
  // stream's own density threshold to these numbers verbatim.
  const AffinityFunction fn(affinity);
  report.reserve(pairs.size());
  for (const auto& [key, buckets] : pairs) {
    const ClusterBlock& a =
        *pinned->shards[static_cast<size_t>(key[0])]->blocks()[
            static_cast<size_t>(key[1])];
    const ClusterBlock& b =
        *pinned->shards[static_cast<size_t>(key[2])]->blocks()[
            static_cast<size_t>(key[3])];
    Scalar cross = 0.0;
    for (Index i = 0; i < a.count; ++i) {
      const auto row_a = a.row(i);
      for (Index j = 0; j < b.count; ++j) {
        cross += a.weights[static_cast<size_t>(i)] *
                 b.weights[static_cast<size_t>(j)] *
                 fn.FromDistance(LpDistance(row_a, b.row(j), affinity.p));
      }
    }
    report.push_back(BoundaryPair{key[0], key[1], key[2], key[3], buckets,
                                  cross});
  }
  return report;
}

}  // namespace alid
