#ifndef ALID_SHARD_SHARDED_STREAM_H_
#define ALID_SHARD_SHARDED_STREAM_H_

#include <cstdint>
#include <memory>
#include <span>
#include <vector>

#include "core/online_alid.h"
#include "obs/latency_reservoir.h"
#include "obs/metrics.h"

namespace alid {

/// Options of the sharded ingest tier.
struct ShardedStreamOptions {
  /// Per-shard OnlineAlid configuration (every shard runs the same one —
  /// affinity/LSH parameters, window, sketch, and the *shared* pool; the
  /// LSH seed in particular makes bucket keys comparable across shards,
  /// which is what the boundary-cluster report keys on).
  OnlineAlidOptions base;
  /// Number of independent OnlineAlid shards, fixed at construction. The
  /// partition of the stream — and therefore every shard's state — is a
  /// pure function of (num_shards, partition_salt, stream), so the sharded
  /// output is part of the determinism contract exactly like an executor
  /// count is not: changing S changes the result, changing executors never
  /// does. num_shards == 1 is bit-identical to a plain OnlineAlid.
  int num_shards = 1;
  /// Mixed into the partition hash; lets deployments re-key the partition
  /// without touching the per-point content hash.
  uint64_t partition_salt = 0;
};

/// Where one arrival landed: the shard and the slot inside that shard's
/// OnlineAlid (the sharded counterpart of the slot InsertBatch returns).
struct ShardSlot {
  int shard = -1;
  Index slot = -1;

  bool operator==(const ShardSlot&) const = default;
};

/// Hash-partitioned intra-process sharding of the ingest path: S independent
/// OnlineAlid instances, each owning the arrivals whose partition key hashes
/// to it, ingesting their per-batch sub-batches concurrently on the shared
/// pool. One OnlineAlid's batch is a pipeline of parallel *pure* phases
/// (hashing, absorb scoring) around serial mutation phases (slot alloc,
/// bucket insert, arrival-order apply) — the serial phases cap its scaling.
/// Sharding runs S such pipelines at once, so the serial phases of different
/// shards overlap and ingest scales past the single-stream barrier ceiling.
///
/// Determinism contract: the partition rule is a stable content hash
/// (SplitMix64 over the point's scalar bit patterns, or an explicit caller
/// key), so which shard owns an arrival — and hence every shard's full
/// state — is a pure function of (options incl. num_shards, stream). For a
/// fixed S the result is bit-identical across executor counts, grains and
/// scheduling (each shard's phases inherit the runtime-wide contract;
/// cross-shard ingest only changes *when* shards run, never what they see),
/// and S == 1 delegates straight to the single OnlineAlid, bit for bit.
///
/// Thread-safety: like OnlineAlid, externally synchronized — one ingest
/// call at a time. Readers go through ShardRouter's published snapshots.
class ShardedStream {
 public:
  ShardedStream(int dim, ShardedStreamOptions options);

  /// The default partition key of a point: a SplitMix64 chain over the
  /// scalar bit patterns. Stable across runs, platforms and batch splits —
  /// the same bytes always land on the same shard.
  static uint64_t PartitionKey(std::span<const Scalar> point);

  /// Shard owning a partition key: SplitMix64(key ^ salt) mod num_shards.
  int ShardOf(uint64_t partition_key) const;

  /// Batch ingest: `points` holds count * dim scalars, row-major, in
  /// arrival order. Arrivals are routed by PartitionKey and each shard
  /// ingests its sub-batch (arrival order preserved within the shard); the
  /// per-shard ingests run concurrently on the shared pool. Returns where
  /// each arrival landed, parallel to the input.
  std::vector<ShardSlot> InsertBatch(std::span<const Scalar> points);

  /// Same, with explicit per-arrival partition keys (count entries) — the
  /// hook for entity-keyed routing and for tests that force placements.
  std::vector<ShardSlot> InsertBatch(std::span<const Scalar> points,
                                     std::span<const uint64_t> partition_keys);

  /// Forces every shard's maintenance pass (concurrently, like ingest).
  void Refresh();

  int dim() const { return dim_; }
  int num_shards() const { return static_cast<int>(shards_.size()); }
  const ShardedStreamOptions& options() const { return options_; }

  /// Shard s's OnlineAlid (the router exports snapshots from these).
  const OnlineAlid& shard(int s) const { return *shards_[s]; }

  /// Total arrivals / live items across all shards.
  Index size() const;
  Index alive() const;

  /// Counter sums across every shard, in the StreamStats shape (the
  /// batch_seconds samples are the *sharded* per-InsertBatch latencies).
  StreamStats stats() const;

  /// The sharded tier's own instruments: ingest counters, the per-shard
  /// `shard<N>_*` gauges, and the ingest-latency histogram.
  const obs::MetricsRegistry& metrics() const { return metrics_.registry; }

 private:
  std::vector<ShardSlot> InsertPartitioned(
      std::span<const Scalar> points, std::span<const uint64_t> partition_keys);
  // Refreshes the shard<N>_alive / shard<N>_clusters_alive / skew gauges;
  // serial (called after the cross-shard barrier only).
  void UpdateShardGauges();

  int dim_;
  ShardedStreamOptions options_;
  std::vector<std::unique_ptr<OnlineAlid>> shards_;

  struct ShardInstruments {
    obs::MetricsRegistry registry;
    obs::Counter* ingest_batches = nullptr;
    obs::Counter* arrivals = nullptr;
    obs::Gauge* hot_shard_arrivals = nullptr;  // max per-shard arrivals
    obs::Gauge* cold_shard_arrivals = nullptr; // min per-shard arrivals
    std::vector<obs::Gauge*> shard_alive;
    std::vector<obs::Gauge*> shard_clusters_alive;
    obs::LatencyReservoir ingest_seconds{StreamStats::kMaxLatencySamples};
  };
  ShardInstruments metrics_;
};

}  // namespace alid

#endif  // ALID_SHARD_SHARDED_STREAM_H_
