#include "shard/sharded_stream.h"

#include <algorithm>
#include <bit>
#include <string>

#include "common/check.h"
#include "common/parallel.h"
#include "common/random.h"
#include "common/timer.h"
#include "obs/trace.h"

namespace alid {

ShardedStream::ShardedStream(int dim, ShardedStreamOptions options)
    : dim_(dim), options_(std::move(options)) {
  ALID_CHECK(dim_ > 0);
  ALID_CHECK(options_.num_shards >= 1);
  shards_.reserve(static_cast<size_t>(options_.num_shards));
  for (int s = 0; s < options_.num_shards; ++s) {
    shards_.push_back(std::make_unique<OnlineAlid>(dim_, options_.base));
  }
  auto& reg = metrics_.registry;
  metrics_.ingest_batches = reg.AddCounter("ingest_batches");
  metrics_.arrivals = reg.AddCounter("arrivals");
  metrics_.hot_shard_arrivals = reg.AddGauge("hot_shard_arrivals");
  metrics_.cold_shard_arrivals = reg.AddGauge("cold_shard_arrivals");
  metrics_.ingest_seconds.AttachHistogram(
      reg.AddHistogram("ingest_seconds", obs::LatencyHistogramEdges()));
  for (int s = 0; s < options_.num_shards; ++s) {
    const std::string label = "shard" + std::to_string(s);
    // Arrivals read an atomic counter, so the callback is safe from any
    // exporting thread; the alive/cluster gauges are plain gauges refreshed
    // serially after each cross-shard barrier (OnlineAlid::alive() walks a
    // deque and must not be read concurrently with ingest).
    reg.AddCallbackGauge(label + "_arrivals", [this, s]() {
      return static_cast<int64_t>(shards_[static_cast<size_t>(s)]->size());
    });
    metrics_.shard_alive.push_back(reg.AddGauge(label + "_alive"));
    metrics_.shard_clusters_alive.push_back(
        reg.AddGauge(label + "_clusters_alive"));
  }
}

uint64_t ShardedStream::PartitionKey(std::span<const Scalar> point) {
  // A content hash over the scalar bit patterns: the same bytes route to
  // the same shard no matter how the stream is batched. The fixed basis
  // keeps the empty-point key defined.
  uint64_t h = 0x5A1D'BEEF'0000'0001ull;
  for (const Scalar v : point) {
    h = SplitMix64(h ^ std::bit_cast<uint64_t>(v));
  }
  return h;
}

int ShardedStream::ShardOf(uint64_t partition_key) const {
  return static_cast<int>(SplitMix64(partition_key ^ options_.partition_salt) %
                          static_cast<uint64_t>(shards_.size()));
}

std::vector<ShardSlot> ShardedStream::InsertBatch(
    std::span<const Scalar> points) {
  ALID_CHECK(points.size() % static_cast<size_t>(dim_) == 0);
  const Index count = static_cast<Index>(points.size()) / dim_;
  if (count == 0) return {};
  if (shards_.size() == 1) return InsertPartitioned(points, {});
  // Default keys: the content hash, computed chunk-parallel (pure per
  // arrival, so the keys — and the partition — never depend on executors).
  std::vector<uint64_t> keys(static_cast<size_t>(count));
  ParallelChunks(options_.base.pool, 0, count, options_.base.grain,
                 [&](int64_t, int64_t lo, int64_t hi) {
                   for (int64_t i = lo; i < hi; ++i) {
                     keys[static_cast<size_t>(i)] = PartitionKey(
                         points.subspan(static_cast<size_t>(i) * dim_,
                                        static_cast<size_t>(dim_)));
                   }
                 });
  return InsertPartitioned(points, keys);
}

std::vector<ShardSlot> ShardedStream::InsertBatch(
    std::span<const Scalar> points, std::span<const uint64_t> partition_keys) {
  ALID_CHECK(points.size() % static_cast<size_t>(dim_) == 0);
  const Index count = static_cast<Index>(points.size()) / dim_;
  if (count == 0) return {};
  if (shards_.size() > 1) {
    ALID_CHECK(partition_keys.size() == static_cast<size_t>(count));
  }
  return InsertPartitioned(points, partition_keys);
}

std::vector<ShardSlot> ShardedStream::InsertPartitioned(
    std::span<const Scalar> points, std::span<const uint64_t> partition_keys) {
  ALID_TRACE_SCOPE("shard", "ingest_batch");
  WallTimer timer;
  const Index count = static_cast<Index>(points.size()) / dim_;
  const int num_shards = static_cast<int>(shards_.size());
  std::vector<ShardSlot> result(static_cast<size_t>(count));

  if (num_shards == 1) {
    // The S == 1 contract: bit-identical to — and as cheap as — a plain
    // OnlineAlid. No keys, no gather/scatter, no cross-shard dispatch; the
    // inner parallel phases keep the whole pool.
    const std::vector<Index> slots = shards_[0]->InsertBatch(points);
    for (Index i = 0; i < count; ++i) {
      result[static_cast<size_t>(i)] = ShardSlot{0, slots[static_cast<size_t>(i)]};
    }
  } else {
    // Gather each shard's sub-batch, preserving arrival order within the
    // shard (the partition is deterministic, so every shard sees a
    // deterministic sub-stream regardless of executors).
    std::vector<std::vector<Scalar>> sub(static_cast<size_t>(num_shards));
    std::vector<std::vector<Index>> positions(static_cast<size_t>(num_shards));
    for (Index i = 0; i < count; ++i) {
      const int s = ShardOf(partition_keys[static_cast<size_t>(i)]);
      auto& flat = sub[static_cast<size_t>(s)];
      const auto row = points.subspan(static_cast<size_t>(i) * dim_,
                                      static_cast<size_t>(dim_));
      flat.insert(flat.end(), row.begin(), row.end());
      positions[static_cast<size_t>(s)].push_back(i);
    }
    // One chunk per shard: a shard claimed by a pool worker ingests with
    // its parallel phases degraded to serial (nested-parallelism rule),
    // one claimed by the caller may keep them parallel — both produce the
    // same bits, so the schedule never shows in the state. The serial
    // phases of different shards overlap; that is the whole speedup.
    std::vector<std::vector<Index>> shard_slots(
        static_cast<size_t>(num_shards));
    ParallelChunks(options_.base.pool, 0, num_shards, /*grain=*/1,
                   [&](int64_t, int64_t lo, int64_t hi) {
                     for (int64_t s = lo; s < hi; ++s) {
                       const auto& flat = sub[static_cast<size_t>(s)];
                       if (flat.empty()) continue;
                       shard_slots[static_cast<size_t>(s)] =
                           shards_[static_cast<size_t>(s)]->InsertBatch(flat);
                     }
                   });
    for (int s = 0; s < num_shards; ++s) {
      const auto& pos = positions[static_cast<size_t>(s)];
      const auto& slots = shard_slots[static_cast<size_t>(s)];
      for (size_t j = 0; j < pos.size(); ++j) {
        result[static_cast<size_t>(pos[j])] = ShardSlot{s, slots[j]};
      }
    }
  }

  metrics_.ingest_batches->Add(1);
  metrics_.arrivals->Add(count);
  UpdateShardGauges();
  metrics_.ingest_seconds.Record(timer.Seconds());
  return result;
}

void ShardedStream::Refresh() {
  ALID_TRACE_SCOPE("shard", "refresh");
  ParallelChunks(options_.base.pool, 0, static_cast<int64_t>(shards_.size()),
                 /*grain=*/1, [&](int64_t, int64_t lo, int64_t hi) {
                   for (int64_t s = lo; s < hi; ++s) {
                     shards_[static_cast<size_t>(s)]->Refresh();
                   }
                 });
  UpdateShardGauges();
}

void ShardedStream::UpdateShardGauges() {
  int64_t hot = 0;
  int64_t cold = 0;
  for (size_t s = 0; s < shards_.size(); ++s) {
    const OnlineAlid& shard = *shards_[s];
    metrics_.shard_alive[s]->Set(static_cast<int64_t>(shard.alive()));
    metrics_.shard_clusters_alive[s]->Set(
        static_cast<int64_t>(shard.clusters().size()));
    const int64_t arrivals = static_cast<int64_t>(shard.size());
    hot = std::max(hot, arrivals);
    cold = s == 0 ? arrivals : std::min(cold, arrivals);
  }
  metrics_.hot_shard_arrivals->Set(hot);
  metrics_.cold_shard_arrivals->Set(cold);
}

Index ShardedStream::size() const {
  Index total = 0;
  for (const auto& shard : shards_) total += shard->size();
  return total;
}

Index ShardedStream::alive() const {
  Index total = 0;
  for (const auto& shard : shards_) total += shard->alive();
  return total;
}

StreamStats ShardedStream::stats() const {
  StreamStats total;
  for (const auto& shard : shards_) {
    const StreamStats s = shard->stats();
    total.arrivals += s.arrivals;
    total.absorbed += s.absorbed;
    total.pooled += s.pooled;
    total.evicted += s.evicted;
    total.redetections += s.redetections;
    total.refreshes += s.refreshes;
    total.clusters_born += s.clusters_born;
    total.clusters_dissolved += s.clusters_dissolved;
    total.cache_entries_invalidated += s.cache_entries_invalidated;
    total.cache_rebudgets += s.cache_rebudgets;
    total.cache_budget_bytes += s.cache_budget_bytes;
    total.sketch_prunes += s.sketch_prunes;
    total.sketch_exact += s.sketch_exact;
    total.refresh_rounds += s.refresh_rounds;
    total.refresh_speculations += s.refresh_speculations;
    total.refresh_conflicts += s.refresh_conflicts;
    total.alive += s.alive;
    total.clusters_alive += s.clusters_alive;
  }
  total.batch_seconds = metrics_.ingest_seconds.Samples();
  return total;
}

}  // namespace alid
