#ifndef ALID_SHARD_SHARD_ROUTER_H_
#define ALID_SHARD_SHARD_ROUTER_H_

#include <cstdint>
#include <memory>
#include <shared_mutex>
#include <span>
#include <vector>

#include "obs/latency_reservoir.h"
#include "obs/metrics.h"
#include "serve/cluster_server.h"
#include "serve/cluster_snapshot.h"
#include "shard/sharded_stream.h"

namespace alid {

class ThreadPool;

/// Options of the fan-out query side.
struct ShardRouterOptions {
  /// Optional shared executor pool for batched fan-out queries; results are
  /// bit-identical for any pool width, grain, scheduling, or nullptr — the
  /// runtime's standard determinism contract.
  ThreadPool* pool = nullptr;
  /// Chunk grain of batched queries (see DeterministicGrain); 0 auto.
  int64_t grain = 0;
};

/// One atomically published sharded generation: the per-shard
/// ClusterSnapshots exported together from one quiescent ShardedStream
/// state. `generation` is the stream's total arrival count — a pure
/// function of (config, stream), never of wall time or publish cadence.
struct ShardedSnapshot {
  uint64_t generation = 0;
  std::vector<std::shared_ptr<const ClusterSnapshot>> shards;
};

/// One merged assignment: the QueryOutcome shape plus the owning shard
/// (generation carries the *sharded* generation, not the per-shard one).
struct ShardAssignment : QueryOutcome {
  int shard = -1;

  bool operator==(const ShardAssignment&) const = default;
};

/// One merged ranked candidate.
struct ShardScoredCluster : ScoredCluster {
  int shard = -1;

  bool operator==(const ShardScoredCluster&) const = default;
};

/// The answer to one fanned-out QueryRequest — the sharded mirror of
/// QueryResponse (same status vocabulary, shard-tagged outcomes).
struct ShardedQueryResponse {
  QueryStatus status = QueryStatus::kOffline;
  uint64_t generation = 0;
  std::vector<ShardAssignment> assignments;
  std::vector<std::vector<ShardScoredCluster>> ranked;

  bool ok() const { return status == QueryStatus::kOk; }
};

/// One cross-shard boundary-cluster pair: two clusters on different shards
/// whose members share at least one LSH bucket (same table, same key — the
/// per-shard indices are seeded identically, so keys are comparable), with
/// the weighted cross density the stream's own merge rule would consult
/// (InstallPoolCluster's pair sum: sum_ij w_i w_j a(x_i, x_j)). A pair
/// whose cross_density clears the detector's density threshold is exactly
/// what a future reconciliation pass would merge.
struct BoundaryPair {
  int shard_a = -1;
  int cluster_a = -1;
  int shard_b = -1;  ///< Always > shard_a.
  int cluster_b = -1;
  /// Distinct (table, bucket) keys the two clusters' members share.
  int64_t shared_buckets = 0;
  Scalar cross_density = 0.0;

  bool operator==(const BoundaryPair&) const = default;
};

/// The serve side of the sharded runtime: publishes the per-shard snapshots
/// of a ShardedStream as ONE atomically-swapped ShardedSnapshot generation
/// and answers queries by fanning out over every shard and merging by
/// score. A request pins exactly one ShardedSnapshot (the linearization
/// point), so every point of a batch — and every shard visited for it — is
/// answered by the same generation even while a hot publisher keeps
/// swapping; the publication cell is the same TSan-visible reader-writer
/// idiom as ClusterServer's.
///
/// Merge semantics: assignment takes the shard whose winner has the
/// largest positive margin, ties broken by ascending (shard, cluster) id —
/// within a shard the snapshot already prefers the lowest cluster id, and
/// across shards a strictly-greater-margin replacement keeps the earliest
/// shard. TopK concatenates the per-shard rankings and orders by affinity
/// descending with the same ascending (shard, cluster) tie-break. Both are
/// pure functions of (request, pinned generation).
///
/// Thread-safety: queries from any number of threads concurrently with one
/// publisher; publishers are externally synchronized with each other (they
/// read the stream, which is single-writer anyway).
class ShardRouter {
 public:
  ShardRouter(int dim, int num_shards, ShardRouterOptions options = {});

  /// Exports every shard's ClusterSnapshot (incrementally against the
  /// previous publish, concurrently on the pool) and swaps the bundle in as
  /// one generation = stream.size(). The stream must be quiescent (between
  /// ingest calls — same contract as ClusterSnapshot::FromStream). Returns
  /// the published generation.
  uint64_t PublishFromStream(const ShardedStream& stream);

  /// Takes the router offline (queries answer kOffline) and drops the
  /// incremental chain.
  void Unpublish();

  /// The current sharded snapshot, or nullptr before the first publish.
  std::shared_ptr<const ShardedSnapshot> snapshot() const;

  /// Generation of the current snapshot (0 when offline).
  uint64_t generation() const;

  /// Snapshot of `generation` (0 = current). The router keeps no history
  /// ring: any nonzero generation other than the current one answers
  /// nullptr (kGenerationUnavailable at the Query level) — per-shard time
  /// travel stays available on the underlying ClusterServers.
  std::shared_ptr<const ShardedSnapshot> SnapshotAt(uint64_t generation) const;

  /// The fan-out serve entry point — QueryRequest semantics as in
  /// ClusterServer::Query, answered by every shard of ONE pinned
  /// generation and merged (see class comment). Assignment results are
  /// bit-identical to querying each shard snapshot serially and merging by
  /// the stated rule.
  ShardedQueryResponse Query(const QueryRequest& request) const;

  /// The boundary-cluster report of the current generation: every
  /// cross-shard cluster pair colliding in LSH bucket space, with shared
  /// bucket counts and exact cross densities, ordered by ascending
  /// (shard_a, cluster_a, shard_b, cluster_b). Deterministic — a pure
  /// function of the pinned snapshot. `affinity` must be the streams' own
  /// kernel parameters (the report reproduces the stream's merge test).
  std::vector<BoundaryPair> BoundaryClusters(
      const AffinityParams& affinity) const;

  int dim() const { return dim_; }
  int num_shards() const { return num_shards_; }
  const ShardRouterOptions& options() const { return options_; }

  /// Router instruments: `shard_fanout_queries` (per-shard sub-queries
  /// issued — count x shards per fanned request; the CI gate asserts it
  /// positive so the fan-out path cannot silently no-op), request/point
  /// counters, and the query/publish latency histograms.
  const obs::MetricsRegistry& metrics() const { return metrics_.registry; }

 private:
  int dim_;
  int num_shards_;
  ShardRouterOptions options_;

  // The publication cell (ClusterServer idiom): shared lock to pin, unique
  // lock to swap. previous_ belongs to the (single) publisher only.
  mutable std::shared_mutex snapshot_mu_;
  std::shared_ptr<const ShardedSnapshot> current_;
  std::vector<std::shared_ptr<const ClusterSnapshot>> previous_;

  struct RouterInstruments {
    obs::MetricsRegistry registry;
    obs::Counter* queries = nullptr;         // requests answered
    obs::Counter* points = nullptr;          // items answered
    obs::Counter* fanout = nullptr;          // shard_fanout_queries
    obs::Counter* topk_queries = nullptr;
    obs::Counter* publishes = nullptr;
    obs::Counter* offline_queries = nullptr;
    obs::Counter* stale_generation = nullptr;
    obs::Counter* sketch_prunes = nullptr;
    obs::Counter* sketch_exact = nullptr;
    obs::LatencyReservoir query_seconds{8192};
    obs::LatencyReservoir publish_seconds{8192};
  };
  mutable RouterInstruments metrics_;
};

}  // namespace alid

#endif  // ALID_SHARD_SHARD_ROUTER_H_
