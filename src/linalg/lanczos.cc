#include "linalg/lanczos.h"

#include <algorithm>
#include <cmath>

#include "common/check.h"
#include "common/dataset.h"
#include "common/random.h"
#include "linalg/jacobi.h"

namespace alid {

EigenDecompositionTopK LanczosTopK(
    Index n, int k,
    const std::function<std::vector<Scalar>(std::span<const Scalar>)>& matvec,
    LanczosOptions options) {
  ALID_CHECK(n >= 1);
  ALID_CHECK(k >= 1 && k <= n);
  int m = options.max_subspace > 0 ? options.max_subspace
                                   : std::max(3 * k, 30);
  m = std::min<int>(m, n);
  ALID_CHECK(m >= k);

  Rng rng(options.seed);

  // Lanczos basis vectors (rows of `basis` for cache friendliness).
  std::vector<std::vector<Scalar>> basis;
  basis.reserve(m);
  std::vector<Scalar> alpha, beta;  // tridiagonal coefficients

  std::vector<Scalar> q(n);
  for (auto& v : q) v = rng.Gaussian();
  {
    Scalar norm = std::sqrt(Dot(q, q));
    for (auto& v : q) v /= norm;
  }

  for (int j = 0; j < m; ++j) {
    basis.push_back(q);
    std::vector<Scalar> w = matvec(q);
    ALID_CHECK(static_cast<Index>(w.size()) == n);
    const Scalar a = Dot(w, q);
    alpha.push_back(a);
    for (Index i = 0; i < n; ++i) {
      w[i] -= a * q[i];
      if (j > 0) w[i] -= beta.back() * basis[j - 1][i];
    }
    // Full reorthogonalization against the whole basis (twice is enough).
    for (int pass = 0; pass < 2; ++pass) {
      for (const auto& b : basis) {
        const Scalar proj = Dot(w, b);
        for (Index i = 0; i < n; ++i) w[i] -= proj * b[i];
      }
    }
    const Scalar b = std::sqrt(Dot(w, w));
    if (b < options.tolerance || j == m - 1) break;
    beta.push_back(b);
    for (Index i = 0; i < n; ++i) q[i] = w[i] / b;
  }

  const int steps = static_cast<int>(alpha.size());
  // Diagonalize the tridiagonal Rayleigh quotient with the Jacobi solver.
  DenseMatrix t(steps, steps, 0.0);
  for (int i = 0; i < steps; ++i) {
    t(i, i) = alpha[i];
    if (i + 1 < steps) {
      t(i, i + 1) = beta[i];
      t(i + 1, i) = beta[i];
    }
  }
  EigenDecomposition tri = JacobiEigenSolver(t);

  const int kk = std::min(k, steps);
  EigenDecompositionTopK out;
  out.values.assign(tri.values.begin(), tri.values.begin() + kk);
  out.vectors = DenseMatrix(n, kk, 0.0);
  for (int j = 0; j < kk; ++j) {
    for (int s = 0; s < steps; ++s) {
      const Scalar coef = tri.vectors(s, j);
      if (coef == 0.0) continue;
      const auto& b = basis[s];
      for (Index i = 0; i < n; ++i) out.vectors(i, j) += coef * b[i];
    }
  }
  return out;
}

}  // namespace alid
