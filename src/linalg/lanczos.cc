#include "linalg/lanczos.h"

#include <algorithm>
#include <cmath>

#include "common/check.h"
#include "common/dataset.h"
#include "common/parallel.h"
#include "common/random.h"
#include "linalg/jacobi.h"

namespace alid {

namespace {

// Default grain of the O(n) vector kernels: one chunk for small problems (no
// pool overhead where a dot costs microseconds), splitting only when n is
// large enough for the pool to pay off.
constexpr int64_t kVectorGrain = 4096;

int64_t VectorGrain(const LanczosOptions& options) {
  return options.grain > 0 ? options.grain : kVectorGrain;
}

}  // namespace

EigenDecompositionTopK LanczosTopK(
    Index n, int k,
    const std::function<std::vector<Scalar>(std::span<const Scalar>)>& matvec,
    LanczosOptions options) {
  ALID_CHECK(n >= 1);
  ALID_CHECK(k >= 1 && k <= n);
  int m = options.max_subspace > 0 ? options.max_subspace
                                   : std::max(3 * k, 30);
  m = std::min<int>(m, n);
  ALID_CHECK(m >= k);

  Rng rng(options.seed);
  ThreadPool* pool = options.pool;
  const int64_t grain = VectorGrain(options);

  // Lanczos basis vectors (rows of `basis` for cache friendliness).
  std::vector<std::vector<Scalar>> basis;
  basis.reserve(m);
  std::vector<Scalar> alpha, beta;  // tridiagonal coefficients

  std::vector<Scalar> q(n);
  for (auto& v : q) v = rng.Gaussian();
  {
    const Scalar norm = std::sqrt(ParallelDot(pool, q, q, grain));
    ParallelChunks(pool, 0, n, grain,
                   [&](int64_t, int64_t lo, int64_t hi) {
                     for (int64_t i = lo; i < hi; ++i) q[i] /= norm;
                   });
  }

  for (int j = 0; j < m; ++j) {
    basis.push_back(q);
    std::vector<Scalar> w = matvec(q);
    ALID_CHECK(static_cast<Index>(w.size()) == n);
    const Scalar a = ParallelDot(pool, w, q, grain);
    alpha.push_back(a);
    const Scalar b_prev = j > 0 ? beta.back() : 0.0;
    const std::vector<Scalar>* prev = j > 0 ? &basis[j - 1] : nullptr;
    ParallelChunks(pool, 0, n, grain,
                   [&](int64_t, int64_t lo, int64_t hi) {
                     for (int64_t i = lo; i < hi; ++i) {
                       w[i] -= a * q[i];
                       if (prev != nullptr) w[i] -= b_prev * (*prev)[i];
                     }
                   });
    // Full reorthogonalization against the whole basis (twice is enough).
    for (int pass = 0; pass < 2; ++pass) {
      for (const auto& b : basis) {
        const Scalar proj = ParallelDot(pool, w, b, grain);
        ParallelChunks(pool, 0, n, grain,
                       [&](int64_t, int64_t lo, int64_t hi) {
                         for (int64_t i = lo; i < hi; ++i) w[i] -= proj * b[i];
                       });
      }
    }
    const Scalar b = std::sqrt(ParallelDot(pool, w, w, grain));
    if (b < options.tolerance || j == m - 1) break;
    beta.push_back(b);
    ParallelChunks(pool, 0, n, grain,
                   [&](int64_t, int64_t lo, int64_t hi) {
                     for (int64_t i = lo; i < hi; ++i) q[i] = w[i] / b;
                   });
  }

  const int steps = static_cast<int>(alpha.size());
  // Diagonalize the tridiagonal Rayleigh quotient with the Jacobi solver.
  DenseMatrix t(steps, steps, 0.0);
  for (int i = 0; i < steps; ++i) {
    t(i, i) = alpha[i];
    if (i + 1 < steps) {
      t(i, i + 1) = beta[i];
      t(i + 1, i) = beta[i];
    }
  }
  EigenDecomposition tri = JacobiEigenSolver(t);

  const int kk = std::min(k, steps);
  EigenDecompositionTopK out;
  out.values.assign(tri.values.begin(), tri.values.begin() + kk);
  out.vectors = DenseMatrix(n, kk, 0.0);
  // Ritz vectors, one row range per chunk; each (i, j) element accumulates
  // over s in ascending order regardless of scheduling.
  ParallelChunks(pool, 0, n, grain,
                 [&](int64_t, int64_t lo, int64_t hi) {
                   for (int64_t i = lo; i < hi; ++i) {
                     for (int j = 0; j < kk; ++j) {
                       Scalar acc = 0.0;
                       for (int s = 0; s < steps; ++s) {
                         acc += tri.vectors(s, j) * basis[s][i];
                       }
                       out.vectors(i, j) = acc;
                     }
                   }
                 });
  return out;
}

}  // namespace alid
