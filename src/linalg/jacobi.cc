#include "linalg/jacobi.h"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "common/check.h"

namespace alid {

EigenDecomposition JacobiEigenSolver(const DenseMatrix& input, double tol,
                                     int max_sweeps) {
  ALID_CHECK(input.rows() == input.cols());
  ALID_CHECK_MSG(input.SymmetryError() < 1e-9, "matrix must be symmetric");
  const Index n = input.rows();

  DenseMatrix a = input;           // working copy, diagonalized in place
  DenseMatrix v(n, n, 0.0);        // accumulated rotations
  for (Index i = 0; i < n; ++i) v(i, i) = 1.0;

  for (int sweep = 0; sweep < max_sweeps; ++sweep) {
    // Frobenius norm of the off-diagonal part.
    Scalar off = 0.0;
    for (Index p = 0; p < n; ++p) {
      for (Index q = p + 1; q < n; ++q) off += a(p, q) * a(p, q);
    }
    if (std::sqrt(off) <= tol) break;

    for (Index p = 0; p < n; ++p) {
      for (Index q = p + 1; q < n; ++q) {
        const Scalar apq = a(p, q);
        if (std::abs(apq) <= tol / (n * n + 1.0)) continue;
        // Classic 2x2 symmetric Schur rotation.
        const Scalar theta = (a(q, q) - a(p, p)) / (2.0 * apq);
        const Scalar t = (theta >= 0.0 ? 1.0 : -1.0) /
                         (std::abs(theta) + std::sqrt(theta * theta + 1.0));
        const Scalar c = 1.0 / std::sqrt(t * t + 1.0);
        const Scalar s = t * c;
        // Apply J^T A J on rows/cols p and q.
        for (Index k = 0; k < n; ++k) {
          const Scalar akp = a(k, p), akq = a(k, q);
          a(k, p) = c * akp - s * akq;
          a(k, q) = s * akp + c * akq;
        }
        for (Index k = 0; k < n; ++k) {
          const Scalar apk = a(p, k), aqk = a(q, k);
          a(p, k) = c * apk - s * aqk;
          a(q, k) = s * apk + c * aqk;
        }
        for (Index k = 0; k < n; ++k) {
          const Scalar vkp = v(k, p), vkq = v(k, q);
          v(k, p) = c * vkp - s * vkq;
          v(k, q) = s * vkp + c * vkq;
        }
      }
    }
  }

  // Sort eigenpairs by descending eigenvalue.
  std::vector<Index> order(n);
  std::iota(order.begin(), order.end(), 0);
  std::sort(order.begin(), order.end(),
            [&](Index x, Index y) { return a(x, x) > a(y, y); });

  EigenDecomposition out;
  out.values.resize(n);
  out.vectors = DenseMatrix(n, n, 0.0);
  for (Index j = 0; j < n; ++j) {
    out.values[j] = a(order[j], order[j]);
    for (Index i = 0; i < n; ++i) out.vectors(i, j) = v(i, order[j]);
  }
  return out;
}

}  // namespace alid
