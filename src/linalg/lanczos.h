#ifndef ALID_LINALG_LANCZOS_H_
#define ALID_LINALG_LANCZOS_H_

#include <cstdint>
#include <functional>
#include <span>
#include <vector>

#include "common/matrix.h"
#include "common/types.h"

namespace alid {

class ThreadPool;

/// Options of the Lanczos process.
struct LanczosOptions {
  /// Krylov subspace dimension; 0 means max(3k, 30), capped at n.
  int max_subspace = 0;
  /// Convergence tolerance on the Ritz residual estimate.
  double tolerance = 1e-9;
  /// Seed of the random start vector.
  uint64_t seed = 42;
  /// Optional shared worker pool. The basis updates, reorthogonalization
  /// and Ritz-vector reconstruction run chunked on it; every inner product
  /// reduces per-chunk partials in chunk order, so the decomposition is
  /// bit-identical for every pool width. (The caller's matvec is free to use
  /// the same pool — that is where the O(n^2) work lives.)
  ThreadPool* pool = nullptr;
  /// Chunk grain of the parallel loops (0 = one ~4096-element grain, so
  /// small problems stay serial and large ones split).
  int64_t grain = 0;
};

/// Top-k eigenpairs as returned by LanczosTopK.
struct EigenDecompositionTopK {
  std::vector<Scalar> values;  // size k, descending
  DenseMatrix vectors;         // n x k, column j pairs with values[j]
};

/// Computes the k algebraically largest eigenpairs of an n x n symmetric
/// operator by the Lanczos process with full reorthogonalization. The
/// operator is any y = A x callback, so callers can pass a dense matrix, a
/// CSR matrix, or a normalized-Laplacian closure without materializing
/// anything new. Cost: O(subspace * cost(matvec) + subspace^2 * n).
EigenDecompositionTopK LanczosTopK(
    Index n, int k,
    const std::function<std::vector<Scalar>(std::span<const Scalar>)>& matvec,
    LanczosOptions options = {});

}  // namespace alid

#endif  // ALID_LINALG_LANCZOS_H_
