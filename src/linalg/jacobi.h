#ifndef ALID_LINALG_JACOBI_H_
#define ALID_LINALG_JACOBI_H_

#include <vector>

#include "common/matrix.h"
#include "common/types.h"

namespace alid {

/// Result of a full symmetric eigendecomposition: A = V diag(w) V^T.
struct EigenDecomposition {
  /// Eigenvalues, descending.
  std::vector<Scalar> values;
  /// Eigenvectors as matrix columns: vectors(i, j) is component i of the
  /// j-th eigenvector (ordered like `values`).
  DenseMatrix vectors;
};

/// Cyclic Jacobi eigensolver for dense symmetric matrices. O(n^3) with a
/// healthy constant — intended for the small inner problems (Nystrom's m x m
/// block, tests, reference results), not for large spectral embeddings (use
/// Lanczos for those).
///
/// `a` must be symmetric (checked up to 1e-9). Converges when all
/// off-diagonal mass is below `tol`.
EigenDecomposition JacobiEigenSolver(const DenseMatrix& a, double tol = 1e-12,
                                     int max_sweeps = 64);

}  // namespace alid

#endif  // ALID_LINALG_JACOBI_H_
