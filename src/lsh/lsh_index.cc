#include "lsh/lsh_index.h"

#include <algorithm>
#include <cmath>
#include <functional>
#include <unordered_set>

#include "common/check.h"
#include "common/epoch_stamp.h"
#include "common/random.h"

namespace alid {

namespace {

// 64-bit FNV-1a over a sequence of 32-bit floor values.
uint64_t HashFloors(const int32_t* vals, int count) {
  uint64_t h = 1469598103934665603ull;
  for (int i = 0; i < count; ++i) {
    uint32_t v = static_cast<uint32_t>(vals[i]);
    for (int b = 0; b < 4; ++b) {
      h ^= (v >> (8 * b)) & 0xffu;
      h *= 1099511628211ull;
    }
  }
  return h;
}

}  // namespace

void LshIndex::InitTables() {
  ALID_CHECK(params_.num_tables > 0);
  ALID_CHECK(params_.num_projections > 0);
  ALID_CHECK(params_.segment_length > 0.0);
  const int d = dim_;
  Rng rng(params_.seed);
  tables_.resize(params_.num_tables);
  for (auto& table : tables_) {
    table.projections.resize(static_cast<size_t>(params_.num_projections) * d);
    for (auto& v : table.projections) v = rng.Gaussian();
    table.offsets.resize(params_.num_projections);
    for (auto& b : table.offsets) b = rng.Uniform(0.0, params_.segment_length);
  }
}

LshIndex::LshIndex(const Dataset& data, LshParams params)
    : data_(&data), dim_(data.dim()), params_(params) {
  InitTables();
  const Index n = data.size();
  for (auto& table : tables_) {
    table.item_key.resize(n);
    for (Index i = 0; i < n; ++i) {
      const uint64_t key = HashPoint(table, data[i]);
      table.item_key[i] = key;
      table.buckets[key].push_back(i);
    }
  }

  indexed_count_ = n;
  live_count_ = n;
  removed_.assign(static_cast<size_t>(n), 0);
  for (const auto& table : tables_) {
    memory_bytes_ += table.projections.size() * sizeof(Scalar);
    memory_bytes_ += table.offsets.size() * sizeof(Scalar);
    memory_bytes_ += table.item_key.size() * sizeof(uint64_t);
    for (const auto& [key, items] : table.buckets) {
      memory_bytes_ += sizeof(key) + items.size() * sizeof(Index);
    }
  }
  charge_ =
      std::make_unique<ScopedMemoryCharge>(static_cast<int64_t>(memory_bytes_));
}

LshIndex::LshIndex(const Dataset& data, LshParams params, DeferIndexing)
    : data_(&data), dim_(data.dim()), params_(params) {
  InitTables();
  for (const auto& table : tables_) {
    memory_bytes_ += table.projections.size() * sizeof(Scalar);
    memory_bytes_ += table.offsets.size() * sizeof(Scalar);
  }
  charge_ =
      std::make_unique<ScopedMemoryCharge>(static_cast<int64_t>(memory_bytes_));
}

LshIndex::LshIndex(int dim, LshParams params)
    : data_(nullptr), dim_(dim), params_(params) {
  ALID_CHECK(dim_ > 0);
  InitTables();
  for (const auto& table : tables_) {
    memory_bytes_ += table.projections.size() * sizeof(Scalar);
    memory_bytes_ += table.offsets.size() * sizeof(Scalar);
  }
  charge_ =
      std::make_unique<ScopedMemoryCharge>(static_cast<int64_t>(memory_bytes_));
}

void LshIndex::AppendItem(Index i) {
  ALID_CHECK_MSG(i == indexed_count_, "items must be appended in order");
  std::vector<uint64_t> keys(tables_.size());
  ComputeItemKeys(i, keys.data());
  InsertItemWithKeys(i, keys);
}

void LshIndex::ComputeItemKeys(Index i, uint64_t* out) const {
  ALID_CHECK(data_ != nullptr);
  ALID_CHECK(i >= 0 && i < data_->size());
  for (size_t t = 0; t < tables_.size(); ++t) {
    out[t] = HashPoint(tables_[t], (*data_)[i]);
  }
}

void LshIndex::ComputePointKeys(std::span<const Scalar> point,
                                uint64_t* out) const {
  for (size_t t = 0; t < tables_.size(); ++t) {
    out[t] = HashPoint(tables_[t], point);
  }
}

void LshIndex::InsertItemWithKeys(Index i, std::span<const uint64_t> keys) {
  ALID_CHECK(static_cast<int>(keys.size()) == params_.num_tables);
  ALID_CHECK(i >= 0 && (data_ == nullptr || i < data_->size()));
  if (i == indexed_count_) {
    for (size_t t = 0; t < tables_.size(); ++t) {
      tables_[t].item_key.push_back(keys[t]);
      tables_[t].buckets[keys[t]].push_back(i);
    }
    removed_.push_back(0);
    ++indexed_count_;
    memory_bytes_ += tables_.size() * (sizeof(uint64_t) + sizeof(Index));
  } else {
    ALID_CHECK_MSG(IsItemRemoved(i),
                   "only removed slots may be re-inserted out of order");
    for (size_t t = 0; t < tables_.size(); ++t) {
      tables_[t].item_key[i] = keys[t];
      tables_[t].buckets[keys[t]].push_back(i);
    }
    removed_[i] = 0;
    memory_bytes_ += tables_.size() * sizeof(Index);
  }
  ++live_count_;
  charge_->Adjust(static_cast<int64_t>(memory_bytes_));
}

void LshIndex::RemoveItem(Index i) {
  ALID_CHECK(i >= 0 && i < indexed_count_);
  ALID_CHECK_MSG(removed_[i] == 0, "item already removed");
  for (auto& table : tables_) {
    auto it = table.buckets.find(table.item_key[i]);
    ALID_CHECK(it != table.buckets.end());
    auto& items = it->second;
    auto pos = std::find(items.begin(), items.end(), i);
    ALID_CHECK(pos != items.end());
    // erase() keeps the remaining order, so bucket iteration — and with it
    // every query result — depends only on the operation history, never on
    // which item happened to sit last.
    items.erase(pos);
    if (items.empty()) table.buckets.erase(it);
  }
  removed_[i] = 1;
  --live_count_;
  memory_bytes_ -= tables_.size() * sizeof(Index);
  charge_->Adjust(static_cast<int64_t>(memory_bytes_));
}

LshIndex::~LshIndex() = default;

uint64_t LshIndex::HashPoint(const Table& table,
                             std::span<const Scalar> point) const {
  const int d = dim_;
  ALID_DCHECK(static_cast<int>(point.size()) == d);
  std::vector<int32_t> floors(params_.num_projections);
  for (int p = 0; p < params_.num_projections; ++p) {
    const Scalar* proj = table.projections.data() + static_cast<size_t>(p) * d;
    Scalar dot = 0.0;
    for (int k = 0; k < d; ++k) dot += proj[k] * point[k];
    floors[p] = static_cast<int32_t>(
        std::floor((dot + table.offsets[p]) / params_.segment_length));
  }
  return HashFloors(floors.data(), params_.num_projections);
}

std::vector<Index> LshIndex::QueryByIndex(Index i) const {
  ALID_CHECK(i >= 0 && i < size());
  ALID_CHECK_MSG(removed_[i] == 0, "cannot query a removed item");
  std::unordered_set<Index> seen;
  for (const auto& table : tables_) {
    auto it = table.buckets.find(table.item_key[i]);
    if (it == table.buckets.end()) continue;
    for (Index j : it->second) {
      if (j != i) seen.insert(j);
    }
  }
  return {seen.begin(), seen.end()};
}

void LshIndex::QueryByIndexBatch(std::span<const Index> items,
                                 std::vector<Index>* out) const {
  // Epoch-stamped scratch (EpochStamp): repeated calls — every CIVS
  // iteration of every map task — touch only the entries they visit.
  // Thread-local, hence safe under PALID.
  thread_local EpochStamp stamp;
  thread_local std::vector<uint64_t> keys;

  out->clear();
  if (items.empty()) return;
  stamp.Begin(static_cast<size_t>(size()));
  for (Index i : items) {
    ALID_CHECK(i >= 0 && i < size());
    ALID_CHECK_MSG(removed_[i] == 0, "cannot query a removed item");
    stamp.Mark(i);
  }
  for (const auto& table : tables_) {
    keys.clear();
    for (Index i : items) keys.push_back(table.item_key[i]);
    std::sort(keys.begin(), keys.end());
    keys.erase(std::unique(keys.begin(), keys.end()), keys.end());
    for (uint64_t key : keys) {
      auto it = table.buckets.find(key);
      if (it == table.buckets.end()) continue;
      for (Index j : it->second) {
        if (!stamp.IsMarked(j)) {
          stamp.Mark(j);
          out->push_back(j);
        }
      }
    }
  }
}

std::vector<Index> LshIndex::QueryByPoint(std::span<const Scalar> point) const {
  std::vector<Index> out;
  QueryByPoint(point, &out);
  return out;
}

void LshIndex::QueryByPoint(std::span<const Scalar> point,
                            std::vector<Index>* out) const {
  // Same epoch-stamped scratch discipline as QueryByIndexBatch:
  // thread-local, so concurrent serving threads dedup independently without
  // allocating.
  thread_local EpochStamp stamp;

  out->clear();
  stamp.Begin(static_cast<size_t>(size()));
  for (const auto& table : tables_) {
    auto it = table.buckets.find(HashPoint(table, point));
    if (it == table.buckets.end()) continue;
    for (Index j : it->second) {
      if (!stamp.IsMarked(j)) {
        stamp.Mark(j);
        out->push_back(j);
      }
    }
  }
}

void LshIndex::VisitBuckets(
    int min_size,
    const std::function<void(std::span<const Index>)>& visitor) const {
  for (const auto& table : tables_) {
    for (const auto& [key, items] : table.buckets) {
      if (static_cast<int>(items.size()) >= min_size) {
        visitor(std::span<const Index>(items.data(), items.size()));
      }
    }
  }
}

double LshIndex::MeanCandidatesPerItem(int sample, uint64_t seed) const {
  const Index n = size();
  if (n == 0) return 0.0;
  Rng rng(seed);
  const int count = std::min<int>(sample, n);
  auto ids = rng.SampleWithoutReplacement(n, count);
  double total = 0.0;
  int live = 0;
  for (Index i : ids) {
    if (removed_[i] != 0) continue;  // expired stream slots have no buckets
    total += static_cast<double>(QueryByIndex(i).size());
    ++live;
  }
  return live > 0 ? total / live : 0.0;
}

}  // namespace alid
