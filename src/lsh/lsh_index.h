#ifndef ALID_LSH_LSH_INDEX_H_
#define ALID_LSH_LSH_INDEX_H_

#include <cstdint>
#include <functional>
#include <memory>
#include <span>
#include <unordered_map>
#include <vector>

#include "common/dataset.h"
#include "common/memory_tracker.h"
#include "common/types.h"

namespace alid {

/// Parameters of the p-stable LSH scheme of Datar et al. (SoCG 2004), the
/// index behind CIVS (Section 4.3) and the baselines' matrix sparsifier
/// (Section 5.1).
struct LshParams {
  /// Number of hash tables (the paper's l; Fig. 6 uses 50).
  int num_tables = 8;
  /// Projections concatenated per hash value (the paper's mu; Fig. 6 uses 40).
  int num_projections = 12;
  /// Length r of the equally divided segments of the projected real line.
  /// Controls recall and the induced sparse degree (Fig. 6's x axis).
  double segment_length = 1.0;
  /// Seed for the Gaussian projections and offsets.
  uint64_t seed = 42;
};

/// p-stable (Gaussian, hence L2) locality sensitive hash index over a
/// Dataset. Each item is hashed into one bucket per table; a query returns
/// the union of its buckets (its Locality Sensitive Region, Fig. 4). As in
/// the paper, per-item bucket assignments are kept as an inverted list so
/// queries by item index need no re-hashing.
class LshIndex {
 public:
  /// Tag selecting the deferred-indexing constructor below.
  enum class DeferIndexing { kDeferred };

  LshIndex(const Dataset& data, LshParams params);

  /// Builds the tables (projections and offsets seeded from params) WITHOUT
  /// hashing any of `data`'s current rows: the caller inserts every item
  /// itself through InsertItemWithKeys, with keys either computed via
  /// ComputeItemKeys or carried over from an earlier index built with the
  /// same params (the incremental snapshot export re-uses an unchanged
  /// cluster's keys this way). Inserting items 0..n-1 in order with their
  /// own keys yields an index identical to the hashing constructor.
  LshIndex(const Dataset& data, LshParams params, DeferIndexing);

  /// Dataset-free deferred index of the given dimensionality: the tables
  /// (projections and offsets) are seeded exactly as in the other
  /// constructors, but no Dataset is attached — items enter only through
  /// InsertItemWithKeys with keys the caller computed (ComputePointKeys) or
  /// inherited from an earlier index built with the same params. This is the
  /// serving snapshot's mode: member rows live in refcounted arena blocks
  /// rather than one flat dataset, so there is no Dataset to point at, yet
  /// the buckets (and hence every QueryByPoint answer) are identical to an
  /// eager index over the same rows in the same order.
  LshIndex(int dim, LshParams params);

  ~LshIndex();

  LshIndex(const LshIndex&) = delete;
  LshIndex& operator=(const LshIndex&) = delete;

  const LshParams& params() const { return params_; }
  int num_tables() const { return params_.num_tables; }
  /// Number of item slots the tables know about (== dataset size unless the
  /// dataset grew and AppendItem was not yet called for the new rows).
  /// Removed slots still count; see live_count().
  Index size() const { return indexed_count_; }
  /// Items currently present in the buckets (size() minus removed slots).
  Index live_count() const { return live_count_; }

  /// Hashes the data point with index `i` (which must already exist in the
  /// underlying Dataset, appended after this index was built) into every
  /// table. Enables the streaming extension (OnlineAlid): the index grows
  /// with the dataset instead of being rebuilt.
  void AppendItem(Index i);

  /// Pure per-item hashing: writes item i's bucket key for every table into
  /// out[0 .. num_tables()). Thread-safe — OnlineAlid's batch ingest hashes
  /// a whole arrival batch in parallel with this and applies the mutations
  /// serially through InsertItemWithKeys. Requires an attached Dataset.
  void ComputeItemKeys(Index i, uint64_t* out) const;

  /// Pure hashing of an arbitrary point (point.size() == the index's
  /// dimensionality): writes its bucket key for every table into
  /// out[0 .. num_tables()). Exactly the HashPoint that ComputeItemKeys and
  /// QueryByPoint run, so keys computed from a copied row equal keys
  /// computed from the original dataset row — the property that lets arena
  /// blocks carry their members' keys across snapshot generations.
  /// Thread-safe; works in dataset-free mode.
  void ComputePointKeys(std::span<const Scalar> point, uint64_t* out) const;

  /// Inserts item i with precomputed keys: either the next append slot
  /// (i == size()) or a previously removed slot whose dataset row was
  /// overwritten by a new arrival. Not thread-safe.
  void InsertItemWithKeys(Index i, std::span<const uint64_t> keys);

  /// Removes item i from every bucket — the sliding-window expiry path of
  /// the streaming runtime. The slot may later be re-used through
  /// InsertItemWithKeys. Not thread-safe.
  void RemoveItem(Index i);

  /// True iff slot i was removed and not yet re-inserted.
  bool IsItemRemoved(Index i) const {
    return i >= 0 && i < indexed_count_ && removed_[i] != 0;
  }

  /// All items colliding with item i in at least one table (i excluded),
  /// deduplicated, unordered.
  std::vector<Index> QueryByIndex(Index i) const;

  /// Batched CIVS query (one multi-probe call): the deduplicated union of
  /// the buckets of every item in `items` across every table, with the
  /// queried items themselves excluded. Buckets shared by several support
  /// items — the common case, since a cluster's support collides by design —
  /// are visited once, and dedup runs on a reusable thread-local stamp
  /// buffer, so there is no per-query hash-set allocation. Appends to *out
  /// after clearing it; order is unspecified. Thread-safe.
  void QueryByIndexBatch(std::span<const Index> items,
                         std::vector<Index>* out) const;

  /// All items colliding with an arbitrary point, deduplicated, unordered.
  std::vector<Index> QueryByPoint(std::span<const Scalar> point) const;

  /// Allocation-light form of QueryByPoint — the serving hot path. Appends
  /// the deduplicated union of the point's buckets to *out after clearing
  /// it; dedup runs on a reusable thread-local stamp buffer, so a
  /// high-QPS query loop allocates nothing per call. The result order is a
  /// pure function of the point and the index history (tables in order,
  /// buckets in insertion order), so batched serving stays bit-identical to
  /// serial serving. Thread-safe against concurrent readers; the index must
  /// not be mutated concurrently (serving queries a frozen per-snapshot
  /// index, which guarantees this).
  void QueryByPoint(std::span<const Scalar> point,
                    std::vector<Index>* out) const;

  /// Invokes visitor(bucket_items) for every bucket of every table with at
  /// least `min_size` items. PALID samples its seeds from these (Sec. 4.6).
  void VisitBuckets(int min_size,
                    const std::function<void(std::span<const Index>)>& visitor)
      const;

  /// Mean collision-list length over items — a cheap recall/selectivity
  /// diagnostic used by tests and EXPERIMENTS.md.
  double MeanCandidatesPerItem(int sample = 200, uint64_t seed = 7) const;

  /// Bytes of table + inverted-list storage (charged to MemoryTracker).
  size_t MemoryBytes() const { return memory_bytes_; }

 private:
  struct Table {
    // Row-major [num_projections x dim] Gaussian projection matrix.
    std::vector<Scalar> projections;
    std::vector<Scalar> offsets;  // one per projection, U[0, r)
    // bucket key -> items. Keys are hashes of the concatenated floor values.
    std::unordered_map<uint64_t, std::vector<Index>> buckets;
    // Inverted list: bucket key of each item.
    std::vector<uint64_t> item_key;
  };

  uint64_t HashPoint(const Table& table, std::span<const Scalar> point) const;

  // Seeds the projection/offset streams of every table from params_. Both
  // constructors share this, so a deferred index hashes every point exactly
  // like an eager one built from the same params — the property that lets
  // precomputed keys move between snapshot generations.
  void InitTables();

  const Dataset* data_;  // nullptr in dataset-free mode
  int dim_ = 0;
  LshParams params_;
  std::vector<Table> tables_;
  Index indexed_count_ = 0;  // how many dataset rows the tables know about
  Index live_count_ = 0;     // indexed slots currently present in buckets
  std::vector<uint8_t> removed_;  // slot -> removed flag
  size_t memory_bytes_ = 0;
  std::unique_ptr<ScopedMemoryCharge> charge_;
};

}  // namespace alid

#endif  // ALID_LSH_LSH_INDEX_H_
